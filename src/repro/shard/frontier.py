"""N host-partitioned frontier shards behind the single-frontier API.

:class:`ShardedFrontier` owns one :class:`~repro.core.frontier.
CrawlFrontier` slice per worker and routes every URL to the shard of
its host (:class:`~repro.shard.router.ShardRouter`).  It exposes the
exact interface of one frontier -- ``push`` / ``requeue`` / ``pop`` /
``next_ready_at`` / ``pending_for`` / ``snapshot`` / ``restore`` and
the admission counters -- so the pipeline, the checkpoint layer and the
parity fingerprints do not care how many shards exist.

**The determinism contract.**  ``pop`` must return entries in the same
global order as one frontier would, for any worker count.  Four
decisions are therefore made at *global* granularity rather than
per shard (the shards run ``managed=True`` and never decide them
locally):

* **sequence numbers** -- all shards draw from one shared
  :class:`~repro.core.frontier.SequenceSource`, so ``(priority,
  -sequence)`` keys are totally ordered across shards;
* **deferred release** -- ready entries leave the shards' deferred
  heaps in global ``(not_before, sequence)`` order, each drawing a
  fresh sequence number, exactly like the one global heap did;
* **refill gating** -- a topic's incoming->outgoing refill runs only
  when the topic's outgoing queues are empty *across all shards*, and
  each refill step moves the globally best incoming entry (DNS
  prefetch in that exact order, global ``outgoing_limit`` and
  ``refill_batch`` caps);
* **overflow eviction** -- the ``incoming_limit`` applies to a topic's
  incoming total across shards, evicting the globally worst candidate
  (which may live in a different shard than the insert).

Together with per-shard seen-sets (equivalent to one global set,
because a URL always routes to the same shard) this makes every
admission, drop, eviction and pop bit-identical to the single
frontier; the argument is spelled out in DESIGN.md.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.frontier import CrawlFrontier, QueueEntry, SequenceSource
from repro.shard.router import ShardRouter

__all__ = ["ShardedFrontier"]


class ShardedFrontier:
    """Host-partitioned frontier with single-frontier pop semantics."""

    def __init__(
        self,
        router: ShardRouter,
        incoming_limit: int = 25_000,
        outgoing_limit: int = 1_000,
        refill_batch: int = 50,
        prefetch: Callable[[str], bool] | None = None,
        now: Callable[[], float] | None = None,
    ) -> None:
        self.router = router
        self.incoming_limit = incoming_limit
        self.outgoing_limit = outgoing_limit
        self.refill_batch = refill_batch
        self.sequence = SequenceSource()
        self.now: Callable[[], float] = now or (lambda: float("inf"))
        self.shards: list[CrawlFrontier] = [
            CrawlFrontier(
                incoming_limit=incoming_limit,
                outgoing_limit=outgoing_limit,
                refill_batch=refill_batch,
                prefetch=prefetch,
                now=self.now,
                sequence=self.sequence,
                managed=True,
            )
            for _ in range(router.workers)
        ]
        # global topic registration order: ``pop`` iterates topics in
        # first-incoming-insert order, exactly like the single
        # frontier's ``_queues`` dict (dicts preserve insertion order)
        self._topic_order: dict[str, None] = {}

    # -- write side ---------------------------------------------------------

    def shard_for(self, url: str) -> CrawlFrontier:
        return self.shards[self.router.shard_of_url(url)]

    def push(self, entry: QueueEntry) -> bool:
        """Admit a URL to its host's shard; False for already-seen."""
        shard = self.shard_for(entry.url)
        if not shard.push(entry):
            return False
        self._note_admitted(entry)
        return True

    def requeue(self, entry: QueueEntry) -> None:
        """Re-admit an already-seen entry (retry / breaker deferral)."""
        self.shard_for(entry.url).requeue(entry)
        self._note_admitted(entry)

    def _note_admitted(self, entry: QueueEntry) -> None:
        # mirror the shard's deferral predicate: only entries that went
        # straight into an incoming queue register the topic and count
        # against the global incoming limit
        if entry.not_before > self.now():
            return
        self._topic_order.setdefault(entry.topic, None)
        self._enforce_incoming_limit(entry.topic)

    def _enforce_incoming_limit(self, topic: str) -> None:
        """Evict the globally worst incoming candidate past the limit."""
        while (
            sum(shard.incoming_size(topic) for shard in self.shards)
            > self.incoming_limit
        ):
            victim: CrawlFrontier | None = None
            worst_key: tuple[float, int] | None = None
            for shard in self.shards:
                key = shard.peek_worst_incoming(topic)
                if key is None:
                    continue
                if worst_key is None or key < worst_key:
                    worst_key = key
                    victim = shard
            assert victim is not None
            victim.evict_worst_incoming(topic)

    # -- read side -----------------------------------------------------------

    def _release_ready(self) -> None:
        """Release due deferred entries in global (not_before, sequence)
        order; each release draws a fresh shared sequence number, so the
        interleave across shards matches the one global heap."""
        now = self.now()
        while True:
            best_shard: CrawlFrontier | None = None
            best_head: tuple[float, int] | None = None
            for shard in self.shards:
                head = shard.deferred_head()
                if head is None or head[0] > now:
                    continue
                if best_head is None or head < best_head:
                    best_head = head
                    best_shard = shard
            if best_shard is None:
                return
            entry = best_shard.release_head_deferred()
            self._topic_order.setdefault(entry.topic, None)
            self._enforce_incoming_limit(entry.topic)

    def _refill(self, topic: str) -> None:
        """Global refill: move the best incoming entries (across all
        shards) into their shards' outgoing queues, prefetching DNS in
        that order, under the global outgoing/refill caps."""
        moved = 0
        while (
            moved < self.refill_batch
            and sum(s.outgoing_size(topic) for s in self.shards)
            < self.outgoing_limit
        ):
            best_shard: CrawlFrontier | None = None
            best_key: tuple[float, int] | None = None
            for shard in self.shards:
                key = shard.peek_best_incoming(topic)
                if key is None:
                    continue
                if best_key is None or key > best_key:
                    best_key = key
                    best_shard = shard
            if best_shard is None:
                return
            if best_shard.move_best_incoming_to_outgoing(topic):
                moved += 1
            # a DNS-dropped candidate does not count as moved, exactly
            # like the single frontier's refill loop

    def pop(self) -> QueueEntry | None:
        """The globally best *ready* URL across topics and shards.

        Identical topic iteration (registration order), refill gating
        (only when a topic's outgoing union is empty) and key
        comparison as :meth:`CrawlFrontier.pop`.
        """
        self._release_ready()
        best_topic: str | None = None
        best_shard: CrawlFrontier | None = None
        best_key: tuple[float, int] | None = None
        for topic in self._topic_order:
            if not any(s.outgoing_size(topic) for s in self.shards):
                self._refill(topic)
            for shard in self.shards:
                key = shard.peek_best_outgoing(topic)
                if key is None:
                    continue
                if best_key is None or key > best_key:
                    best_key = key
                    best_topic = topic
                    best_shard = shard
        if best_topic is None or best_shard is None:
            return None
        return best_shard.pop_best_outgoing(best_topic)

    def next_ready_at(self) -> float | None:
        """Earliest ``not_before`` across every shard's deferred heap."""
        heads = [
            head[0]
            for head in (shard.deferred_head() for shard in self.shards)
            if head is not None
        ]
        return min(heads) if heads else None

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def pending_for(self, topic: str) -> int:
        return sum(shard.pending_for(topic) for shard in self.shards)

    def has_seen(self, url: str) -> bool:
        return self.shard_for(url).has_seen(url)

    @property
    def enqueued(self) -> int:
        return sum(shard.enqueued for shard in self.shards)

    @property
    def duplicate_drops(self) -> int:
        return sum(shard.duplicate_drops for shard in self.shards)

    @property
    def evictions(self) -> int:
        return sum(shard.evictions for shard in self.shards)

    @property
    def dns_drops(self) -> int:
        return sum(shard.dns_drops for shard in self.shards)

    @property
    def deferred_total(self) -> int:
        return sum(shard.deferred_total for shard in self.shards)

    @property
    def _seen_urls(self) -> set[str]:
        """Union of the shards' seen-sets (parity fingerprints read it)."""
        merged: set[str] = set()
        for shard in self.shards:
            merged |= shard._seen_urls
        return merged

    def stats(self) -> dict[str, float]:
        """Aggregate admission statistics (obs ``Instrumented``); the
        same keys as one :meth:`CrawlFrontier.stats`."""
        return {
            "size": float(len(self)),
            "enqueued": float(self.enqueued),
            "duplicate_drops": float(self.duplicate_drops),
            "evictions": float(self.evictions),
            "dns_drops": float(self.dns_drops),
            "deferred_total": float(self.deferred_total),
        }

    @property
    def topics(self) -> list[str]:
        return sorted(self._topic_order)

    # -- checkpoint -----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Composite image: shared sequence, global topic order and one
        :meth:`CrawlFrontier.snapshot` per shard."""
        return {
            "workers": len(self.shards),
            "sequence": self.sequence.value,
            "topic_order": list(self._topic_order),
            "shards": [shard.snapshot() for shard in self.shards],
        }

    def restore(self, state: dict[str, Any]) -> None:
        if state.get("workers") != len(self.shards):
            raise ValueError(
                f"checkpoint has {state.get('workers')} frontier shards, "
                f"this context has {len(self.shards)} -- resume with the "
                "same crawl_workers"
            )
        for shard, shard_state in zip(self.shards, state["shards"]):
            shard.restore(shard_state)
        # each shard restore rewrites the *shared* source with its own
        # snapshot value; the composite value is authoritative
        self.sequence.value = state["sequence"]
        self._topic_order = {topic: None for topic in state["topic_order"]}
