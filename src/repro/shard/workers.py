"""Per-worker runtime slices and the merge-barrier machinery.

A sharded crawl is N :class:`WorkerSlice`\\ s: worker *i* owns frontier
shard *i*, breaker board *i*, worker pool *i* (``threads_per_worker``
simulated crawler threads) and the bulk-loader workspace range
``[i * threads_per_worker, (i + 1) * threads_per_worker)``.  All
placement follows one :class:`~repro.shard.router.ShardRouter`, so a
host's queue entries, breaker, politeness slots, fetch slots and
storage rows always land on the same worker.

Host-local state shards for free -- a breaker or politeness slot is
only ever consulted for its own host -- which is why
:class:`BreakerBoardSet` is nothing but N boards behind the
single-board read interface.  Global phases (retraining, link
analysis, archetype promotion) are the part that does *not* shard;
they run behind the merge barrier the :class:`WorkerSet` tracks
(``note_commit`` / ``run_barrier``), at which point every worker's
in-flight micro-batch has been committed and merged state is safe to
read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.core.frontier import CrawlFrontier
from repro.robust.breaker import BreakerBoard, BreakerPolicy, HostBreaker
from repro.shard.frontier import ShardedFrontier
from repro.shard.router import ShardRouter
from repro.web.clock import SimulatedClock, WorkerPool

__all__ = ["BreakerBoardSet", "WorkerSlice", "WorkerSet"]


class BreakerBoardSet:
    """N host-partitioned breaker boards behind the one-board interface.

    Every host's breaker lives on exactly one worker's board (the
    router decides which), so the write side is a pure dispatch and the
    read side merges N disjoint host tables.
    """

    def __init__(
        self,
        router: ShardRouter,
        policy: BreakerPolicy | None = None,
        obs: object | None = None,
    ) -> None:
        self.router = router
        self.boards: list[BreakerBoard] = [
            BreakerBoard(policy, obs=obs) for _ in range(router.workers)
        ]
        self.policy: BreakerPolicy = self.boards[0].policy

    def board_for(self, host: str) -> BreakerBoard:
        return self.boards[self.router.shard_of(host)]

    # -- single-board interface (dispatch by host) -----------------------

    def get(self, host: str) -> HostBreaker:
        return self.board_for(host).get(host)

    def admit(self, host: str, now: float) -> tuple[HostBreaker, str, float]:
        return self.board_for(host).admit(host, now)

    def priority_factor(self, host: str) -> float:
        return self.board_for(host).priority_factor(host)

    def __contains__(self, host: str) -> bool:
        return host in self.board_for(host)

    # -- merged read-side views ------------------------------------------

    def items(self) -> Iterator[tuple[str, HostBreaker]]:
        for board in self.boards:
            yield from board.items()

    def __len__(self) -> int:
        return sum(len(board) for board in self.boards)

    @property
    def quarantined(self) -> list[str]:
        return sorted(
            host for board in self.boards for host in board.quarantined
        )

    @property
    def slow_hosts(self) -> list[str]:
        return sorted(
            host for board in self.boards for host in board.slow_hosts
        )

    def stats(self) -> dict[str, float]:
        """Aggregate board counters -- the same keys as one
        :meth:`BreakerBoard.stats`, summed across workers."""
        merged = [board.stats() for board in self.boards]
        return {
            "hosts_tracked": sum(s["hosts_tracked"] for s in merged),
            "hosts_quarantined": sum(s["hosts_quarantined"] for s in merged),
            "hosts_slow": sum(s["hosts_slow"] for s in merged),
            "breaker_trips": sum(s["breaker_trips"] for s in merged),
            "breaker_probes": sum(s["breaker_probes"] for s in merged),
        }

    # -- checkpoint -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"workers": [board.to_dict() for board in self.boards]}

    def restore(self, data: dict[str, Any]) -> None:
        per_worker = data["workers"]
        if len(per_worker) != len(self.boards):
            raise ValueError(
                f"checkpoint has {len(per_worker)} breaker boards, this "
                f"context has {len(self.boards)} -- resume with the same "
                "crawl_workers"
            )
        for board, board_state in zip(self.boards, per_worker):
            board.restore(board_state)


@dataclass
class WorkerSlice:
    """One worker's view of the sharded runtime (all host-local state)."""

    index: int
    frontier: CrawlFrontier
    board: BreakerBoard
    pool: WorkerPool

    def stats(self) -> dict[str, float]:
        """One worker's gauges, exported as the ``shard_w{i}`` source."""
        return {
            "frontier_size": float(len(self.frontier)),
            "enqueued": float(self.frontier.enqueued),
            "duplicate_drops": float(self.frontier.duplicate_drops),
            "evictions": float(self.frontier.evictions),
            "dns_drops": float(self.frontier.dns_drops),
            "deferred_total": float(self.frontier.deferred_total),
            "hosts_tracked": float(len(self.board)),
            "hosts_quarantined": float(len(self.board.quarantined)),
            "hosts_slow": float(len(self.board.slow_hosts)),
        }


class WorkerSet:
    """The N per-worker slices plus the global coordination state.

    Owns the router, the sharded frontier, the breaker-board set and
    one :class:`WorkerPool` per worker; tracks cross-shard link
    handoffs and the commit counter that triggers merge barriers.
    """

    def __init__(
        self,
        count: int,
        clock: SimulatedClock,
        threads_per_worker: int,
        incoming_limit: int = 25_000,
        outgoing_limit: int = 1_000,
        refill_batch: int = 50,
        breaker_policy: BreakerPolicy | None = None,
        prefetch: Callable[[str], bool] | None = None,
        obs: object | None = None,
    ) -> None:
        if count < 1:
            raise ValueError(f"worker count must be >= 1, got {count}")
        self.count = count
        self.clock = clock
        self.threads_per_worker = threads_per_worker
        self.router = ShardRouter(count)
        self.frontier = ShardedFrontier(
            self.router,
            incoming_limit=incoming_limit,
            outgoing_limit=outgoing_limit,
            refill_batch=refill_batch,
            prefetch=prefetch,
            now=lambda: clock.now,
        )
        self.hosts = BreakerBoardSet(self.router, breaker_policy, obs=obs)
        self.pools: list[WorkerPool] = [
            WorkerPool(threads_per_worker, clock) for _ in range(count)
        ]
        self.slices: list[WorkerSlice] = [
            WorkerSlice(
                index=i,
                frontier=self.frontier.shards[i],
                board=self.hosts.boards[i],
                pool=self.pools[i],
            )
            for i in range(count)
        ]
        self.cross_shard_links = 0
        """Links whose source and target hosts live on different
        workers (handed off through the shared frontier)."""
        self.local_links = 0
        self.commits = 0
        self.barriers = 0
        self.barrier_hooks: list[Callable[[], None]] = []
        """Global-phase callbacks run at each merge barrier (flushes,
        link-analysis waves, archetype promotion sweeps)."""

    # -- placement --------------------------------------------------------

    def slice_for(self, host: str) -> WorkerSlice:
        return self.slices[self.router.shard_of(host)]

    def pool_for(self, host: str) -> WorkerPool:
        return self.pools[self.router.shard_of(host)]

    def workspace_for(self, key: int, host: str) -> int:
        """The bulk-loader workspace for ``host``'s rows: each worker
        owns a contiguous range of ``threads_per_worker`` workspaces."""
        base = self.router.shard_of(host) * self.threads_per_worker
        return base + key % self.threads_per_worker

    # -- scheduling -------------------------------------------------------

    def run_fetch(self, host: str, duration: float) -> tuple[float, float]:
        """Schedule a fetch of ``host`` on its worker's pool."""
        return self.pool_for(host).run(duration)

    def drain(self) -> float:
        """Advance the clock until every worker's pool is idle."""
        for pool in self.pools:
            pool.drain()
        return self.clock.now

    # -- link handoff accounting -----------------------------------------

    def note_link(self, src_host: str, dst_host: str) -> None:
        """Record an admitted link by locality of its endpoint hosts."""
        if self.router.shard_of(src_host) == self.router.shard_of(dst_host):
            self.local_links += 1
        else:
            self.cross_shard_links += 1

    # -- merge barriers ---------------------------------------------------

    def add_barrier_hook(self, hook: Callable[[], None]) -> None:
        self.barrier_hooks.append(hook)

    def note_commit(self, interval: int) -> bool:
        """Count one committed micro-batch; True when a barrier is due
        (every ``interval`` commits; 0 disables periodic barriers)."""
        self.commits += 1
        return interval > 0 and self.commits % interval == 0

    def run_barrier(self) -> None:
        """Run every global-phase hook at a merged, quiescent point."""
        self.barriers += 1
        for hook in self.barrier_hooks:
            hook()

    # -- observability ----------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Set-level gauges, exported as the ``shard`` source."""
        return {
            "workers": float(self.count),
            "commits": float(self.commits),
            "barriers": float(self.barriers),
            "cross_shard_links": float(self.cross_shard_links),
            "local_links": float(self.local_links),
        }
