"""Sharded crawl runtime: deterministic N-worker host partitioning.

BUbiNG-style decomposition of the crawl (PAPERS.md): the frontier is
hash-partitioned by *host* onto N workers, politeness and circuit
breakers stay host-local (so they shard for free), and global phases
(retraining, link analysis, archetype promotion) run behind periodic
merge barriers.

* :class:`~repro.shard.router.ShardRouter` -- a stable host-hash ->
  worker-id mapping (BLAKE2b, independent of Python's salted ``hash``);
* :class:`~repro.shard.frontier.ShardedFrontier` -- N per-worker
  :class:`~repro.core.frontier.CrawlFrontier` slices behind the single
  frontier's exact interface, coordinated at global granularity so the
  pop order is *bit-identical* to one frontier for any N;
* :class:`~repro.shard.workers.WorkerSet` -- the per-worker slices
  (frontier shard, breaker board, worker pool, workspaces) plus the
  merge-barrier machinery and cross-shard link-handoff accounting.

The determinism contract and its proof obligation live in DESIGN.md
("Sharding the crawl runtime"); the headline guarantee is that N=1 and
N=8 crawls produce identical Table-1 counters.
"""

from __future__ import annotations

from repro.shard.frontier import ShardedFrontier
from repro.shard.router import ShardRouter
from repro.shard.workers import BreakerBoardSet, WorkerSet, WorkerSlice

__all__ = [
    "ShardRouter",
    "ShardedFrontier",
    "WorkerSet",
    "WorkerSlice",
    "BreakerBoardSet",
]
