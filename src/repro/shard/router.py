"""Stable host-hash -> worker-id routing.

Every placement decision in the sharded runtime (which frontier shard
admits a URL, which breaker board tracks a host, which worker pool
fetches, which workspace range stores the rows) flows through one
:class:`ShardRouter`, so they can never disagree.

The hash is BLAKE2b over the host name -- *not* Python's builtin
``hash``, whose per-process salting the repo's determinism rules ban --
so the partition is identical across runs, machines and checkpoints.
"""

from __future__ import annotations

import hashlib

from repro.web.urls import parse_url

__all__ = ["ShardRouter"]


class ShardRouter:
    """Deterministic host -> worker-id partition for N workers."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        self.workers = workers
        self._cache: dict[str, int] = {}

    def shard_of(self, host: str) -> int:
        """The worker id owning ``host`` (stable across runs)."""
        shard = self._cache.get(host)
        if shard is None:
            digest = hashlib.blake2b(
                host.encode("utf-8"), digest_size=8
            ).digest()
            shard = int.from_bytes(digest, "big") % self.workers
            self._cache[host] = shard
        return shard

    def shard_of_url(self, url: str) -> int:
        """The worker id owning ``url``'s host (0 for unparseable URLs,
        which the admit stage rejects deterministically anyway)."""
        parsed = parse_url(url)
        if parsed is None:
            return 0
        return self.shard_of(parsed.host)
