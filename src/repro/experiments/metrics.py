"""Shared evaluation metrics for the experiment drivers.

The synthetic Web knows every page's true topic, so experiments can
compute exact precision/recall against ground truth.  This module keeps
the counting in one place:

* :class:`BinaryCounts` -- confusion counts with derived metrics; a
  decision of 0 (meta-classifier abstention) counts as a rejection and
  is tracked separately;
* :func:`ranking_precision_at_k` -- threshold-free precision of a
  confidence ranking, used where absolute decision thresholds would
  dominate the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

__all__ = ["BinaryCounts", "ranking_precision_at_k"]


@dataclass
class BinaryCounts:
    """Streaming confusion counts for a binary decision function."""

    tp: int = 0
    fp: int = 0
    fn: int = 0
    tn: int = 0
    abstained: int = 0

    def update(self, predicted: int, actual: int) -> None:
        """Record one decision; ``predicted`` may be 0 for abstention."""
        if predicted == 0:
            self.abstained += 1
            if actual == 1:
                self.fn += 1
            else:
                self.tn += 1
            return
        if predicted == 1 and actual == 1:
            self.tp += 1
        elif predicted == 1:
            self.fp += 1
        elif actual == 1:
            self.fn += 1
        else:
            self.tn += 1

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.fn + self.tn

    @property
    def precision(self) -> float:
        """Precision; 0.0 when nothing was predicted positive (a
        degenerate classifier must not look perfect)."""
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0

    @property
    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.total if self.total else 0.0

    @property
    def abstain_rate(self) -> float:
        return self.abstained / self.total if self.total else 0.0


def ranking_precision_at_k(
    scored: Iterable[tuple[float, bool]], k: int | None = None
) -> float:
    """Precision of the top-k of a (score, is_relevant) ranking.

    ``k`` defaults to the number of relevant items (R-precision).
    """
    pairs = sorted(scored, key=lambda pair: -pair[0])
    if k is None:
        k = sum(1 for _score, relevant in pairs if relevant)
    if k <= 0:
        return 1.0
    top = pairs[:k]
    if not top:
        return 0.0
    return sum(1 for _score, relevant in top if relevant) / len(top)
