"""Feature-selection experiment (paper section 2.3, experiment E7).

The paper selects the top 2000 features per topic by Mutual Information,
pre-filtering to the 5000 most frequent in-topic terms, and reports that
MI "is known as one of the most effective methods [24]".  We quantify
that on the synthetic corpus: rank features by MI, by raw tf, and
randomly; train an SVM on the top-N features for several N; and compare
held-out accuracy.  MI should dominate at small feature budgets and the
curves should converge as N grows -- the Yang/Pedersen (ICML 1997) shape.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core.feature_selection import select_features
from repro.experiments.reporting import ExperimentTable
from repro.ml.svm import LinearSVM
from repro.text.features import AnalyzedDocument, TermSpace
from repro.text.tokenizer import tokenize_html
from repro.text.vectorizer import TfIdfVectorizer
from repro.web import PageRole, SyntheticWeb, WebGraphConfig

__all__ = ["FeatureSelectionResult", "run_feature_selection_experiment"]


@dataclass
class FeatureSelectionResult:
    """Held-out accuracy per (ranking method, feature budget)."""

    budgets: list[int]
    accuracy: dict[str, list[float]]
    signature_hits: list[str]
    """Top MI features that are true topic-signature stems."""

    def table(self) -> ExperimentTable:
        table = ExperimentTable(
            "Feature selection quality (section 2.3)",
            ["Method"] + [f"top {n}" for n in self.budgets],
            note="held-out accuracy of an SVM trained on the selected features",
        )
        for method, accuracies in self.accuracy.items():
            table.add_row([method] + [round(a, 3) for a in accuracies])
        return table


def _counts(web: SyntheticWeb, page) -> Counter:
    html = web.renderer.render(page)
    doc = AnalyzedDocument(tokens=tokenize_html(html).tokens)
    return TermSpace().extract(doc)


def run_feature_selection_experiment(
    seed: int = 41,
    budgets: tuple[int, ...] = (10, 40, 200),
    train_per_class: int = 30,
    test_per_class: int = 80,
    web: SyntheticWeb | None = None,
) -> FeatureSelectionResult:
    """MI vs tf vs random feature ranking at several budgets."""
    web = web or SyntheticWeb.generate(
        WebGraphConfig(
            seed=seed, target_researchers=130, other_researchers=65,
            universities=25, hubs_per_topic=4,
            background_hosts_per_category=8, pages_per_background_host=6,
            directory_pages_per_category=8,
        )
    )
    target = web.config.target_topic
    rng = np.random.default_rng(seed)
    # Negatives are *sibling research topics*: they share the category
    # vocabulary with the target, so frequency-based rankings waste their
    # budget on category terms that discriminate nothing -- the paper's
    # "theorem separates math from agriculture but not algebra from
    # stochastics" situation, one level up.
    sibling_topics = [
        t for t in web.config.research_topics if t != target
    ]
    hard_roles = (PageRole.HOMEPAGE, PageRole.CV)
    positives = [
        p for p in web.pages_by_topic(target) if p.role in hard_roles
    ]
    negatives = [
        p for p in web.pages
        if p.topic in sibling_topics and p.role in hard_roles
    ]
    rng.shuffle(positives)
    rng.shuffle(negatives)
    pos = [_counts(web, p) for p in positives[: train_per_class + test_per_class]]
    neg = [_counts(web, p) for p in negatives[: train_per_class + test_per_class]]
    pos_train, pos_test = pos[:train_per_class], pos[train_per_class:]
    neg_train, neg_test = neg[:train_per_class], neg[train_per_class:]

    vectorizer = TfIdfVectorizer()
    for counts in pos_train + neg_train:
        vectorizer.ingest(counts.keys())
    vectorizer.refresh()

    # -- the three rankings, from the training data only -----------------
    mi_ranked = [
        score.feature
        for score in select_features(
            {"topic": pos_train, "rest": neg_train}, "topic",
            tf_preselection=100_000, selected_features=100_000,
        )
    ]
    tf_totals: Counter = Counter()
    for counts in pos_train:
        tf_totals.update(counts)
    tf_ranked = [term for term, _ in tf_totals.most_common()]
    all_terms = sorted(
        {t for counts in pos_train + neg_train for t in counts}
    )
    random_ranked = list(all_terms)
    rng.shuffle(random_ranked)

    rankings = {"MI": mi_ranked, "tf": tf_ranked, "random": random_ranked}
    labels = [1] * len(pos_train) + [-1] * len(neg_train)
    test_labels = [1] * len(pos_test) + [-1] * len(neg_test)

    accuracy: dict[str, list[float]] = {name: [] for name in rankings}
    for name, ranking in rankings.items():
        for budget in budgets:
            keep = set(ranking[:budget])
            train_vectors = [
                vectorizer.vectorize_counts(c).project(keep)
                for c in pos_train + neg_train
            ]
            test_vectors = [
                vectorizer.vectorize_counts(c).project(keep)
                for c in pos_test + neg_test
            ]
            svm = LinearSVM(C=1.0, seed=seed).fit(train_vectors, labels)
            correct = sum(
                svm.predict(v) == label
                for v, label in zip(test_vectors, test_labels)
            )
            accuracy[name].append(correct / len(test_labels))

    signature = set(web.universe.spec(target).signature)
    signature_hits = [f for f in mi_ranked[:20] if f in _stem_all(signature)]
    return FeatureSelectionResult(
        budgets=list(budgets),
        accuracy=accuracy,
        signature_hits=signature_hits,
    )


def _stem_all(words) -> set[str]:
    from repro.text.stemmer import stem

    return {stem(w) for w in words}


@dataclass
class BudgetSelectionResult:
    """Fixed feature budgets vs the xi-alpha-chosen one (paper 3.5)."""

    rows: list[tuple[str, int, float]]
    """(label, budget used, held-out accuracy)"""
    chosen_budget: int

    def table(self) -> ExperimentTable:
        table = ExperimentTable(
            "xi-alpha feature-budget selection (section 3.5)",
            ["Model", "Features", "Held-out accuracy"],
            note="the estimator picks the budget before seeing test data",
        )
        for label, budget, accuracy in self.rows:
            table.add_row([label, budget, round(accuracy, 3)])
        return table

    def accuracy_of(self, label: str) -> float:
        for row_label, _budget, accuracy in self.rows:
            if row_label == label:
                return accuracy
        raise KeyError(label)


def run_budget_selection_experiment(
    seed: int = 47,
    budgets: tuple[int, ...] = (25, 100, 400, 1200),
    train_per_class: int = 30,
    test_per_class: int = 80,
    web: SyntheticWeb | None = None,
) -> BudgetSelectionResult:
    """Does xi-alpha pick a good feature count without test data?

    Trains one single-topic classifier per fixed budget plus one with
    ``feature_budget_candidates`` set (the engine's adaptive mode) and
    compares held-out accuracy.  The adaptive model should land within a
    small delta of the best fixed budget -- which is the point: BINGO!
    tunes this knob from training data alone.
    """
    from repro.core.classifier import HierarchicalClassifier
    from repro.core.config import BingoConfig
    from repro.core.ontology import TopicTree

    web = web or SyntheticWeb.generate(
        WebGraphConfig(
            seed=seed, target_researchers=130, other_researchers=65,
            universities=25, hubs_per_topic=4,
            background_hosts_per_category=8, pages_per_background_host=6,
            directory_pages_per_category=8,
        )
    )
    target = web.config.target_topic
    rng = np.random.default_rng(seed)
    hard_roles = (PageRole.HOMEPAGE, PageRole.CV)
    positives = [
        p for p in web.pages_by_topic(target) if p.role in hard_roles
    ]
    siblings = [
        p for p in web.pages
        if p.topic in web.config.research_topics and p.topic != target
        and p.role in hard_roles
    ]
    rng.shuffle(positives)
    rng.shuffle(siblings)
    pos = positives[: train_per_class + test_per_class]
    neg = siblings[: train_per_class + test_per_class]
    pos_docs = [{"term": _counts(web, p)} for p in pos]
    neg_docs = [{"term": _counts(web, p)} for p in neg]

    def build(config) -> HierarchicalClassifier:
        tree = TopicTree.from_leaves([target])
        classifier = HierarchicalClassifier(tree, config)
        training = {
            f"ROOT/{target}": pos_docs[:train_per_class],
            "ROOT/OTHERS": neg_docs[:train_per_class],
        }
        for docs in training.values():
            for doc in docs:
                classifier.ingest(doc)
        classifier.train(training)
        return classifier

    def accuracy(classifier) -> float:
        # one batch call per held-out side: the kernel is built once and
        # the wave-based descent scores the whole evaluation set together
        pos_held = pos_docs[train_per_class:]
        neg_held = neg_docs[train_per_class:]
        correct = sum(
            1 for r in classifier.classify_batch(pos_held) if r.accepted
        ) + sum(
            1 for r in classifier.classify_batch(neg_held) if not r.accepted
        )
        total = len(pos_held) + len(neg_held)
        return correct / total if total else 0.0

    rows: list[tuple[str, int, float]] = []
    for budget in budgets:
        config = BingoConfig(
            seed=seed, tf_preselection=10_000, selected_features=budget,
        )
        rows.append((f"fixed {budget}", budget, accuracy(build(config))))
    adaptive_config = BingoConfig(
        seed=seed, tf_preselection=10_000,
        selected_features=max(budgets),
        feature_budget_candidates=tuple(budgets),
    )
    adaptive = build(adaptive_config)
    member = adaptive.models[f"ROOT/{target}"].members[0]
    rows.append(
        ("xi-alpha chosen", member.feature_budget, accuracy(adaptive))
    )
    return BudgetSelectionResult(rows=rows, chosen_budget=member.feature_budget)
