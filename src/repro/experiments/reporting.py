"""Plain-text experiment tables in the paper's style."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

__all__ = ["ExperimentTable"]


@dataclass
class ExperimentTable:
    """A titled table that renders aligned plain text.

    >>> t = ExperimentTable("Table 1", ["Property", "90 min"], note="demo")
    >>> t.add_row(["Visited URLs", 1234])
    >>> print(t.render())  # doctest: +ELLIPSIS
    Table 1
    ...
    """

    title: str
    headers: Sequence[str]
    note: str = ""
    rows: list[list] = field(default_factory=list)

    def add_row(self, row: Sequence) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(self.headers)}"
            )
        self.rows.append(list(row))

    @staticmethod
    def _cell(value) -> str:
        if isinstance(value, float):
            return f"{value:,.3f}".rstrip("0").rstrip(".")
        if isinstance(value, int):
            return f"{value:,}"
        return str(value)

    def render(self) -> str:
        cells = [[self._cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(str(header)), *(len(row[i]) for row in cells), 1)
            if cells
            else len(str(header))
            for i, header in enumerate(self.headers)
        ]
        lines = [self.title]
        if self.note:
            lines.append(f"  ({self.note})")
        header_line = " | ".join(
            str(h).ljust(w) for h, w in zip(self.headers, widths)
        )
        lines.append(header_line)
        lines.append("-+-".join("-" * w for w in widths))
        for row in cells:
            lines.append(
                " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
            )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
