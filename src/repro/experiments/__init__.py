"""Experiment drivers reproducing every table and figure of the paper.

Each module is a self-contained driver used by both ``benchmarks/`` and
``examples/``:

* :mod:`repro.experiments.portal` -- Table 1 (crawl summary) and Tables
  2/3 (portal precision/recall vs the DBLP-style registry);
* :mod:`repro.experiments.expert` -- Figures 4/5 (expert-search seeds and
  the post-processed top-10);
* :mod:`repro.experiments.meta_bench` -- the section 3.5 claim that meta
  classification lifts precision from ~80% to >90%;
* :mod:`repro.experiments.featsel` -- MI feature-selection quality
  (section 2.3);
* :mod:`repro.experiments.ablations` -- design-choice ablations (focus
  rules and tunnelling, archetype thresholding, negative examples,
  feature spaces);
* :mod:`repro.experiments.reporting` -- plain-text table rendering.
"""

from repro.experiments.reporting import ExperimentTable

__all__ = ["ExperimentTable"]
