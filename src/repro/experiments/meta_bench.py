"""Meta-classification experiment (paper section 3.5).

The paper reports that "unanimous and weighted average decisions improved
precision from values around 80 percent to values above 90 percent".
Its meta classifier combines decision models built over *different
feature spaces* (single terms, term pairs, anchor texts, combinations) --
diversity across spaces is what makes the votes partly independent.

We reproduce that protocol: for one topic we train five members --
{SVM, Naive Bayes, Rocchio} on the single-term space plus {SVM, Naive
Bayes} on the term-pair space -- on a deliberately hard problem (tiny
training set with label noise, low-specificity test pages), then compare
member precision with the three meta decision functions.  Results are
averaged over several seeds because the tiny-training regime is noisy.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.experiments.metrics import BinaryCounts
from repro.experiments.reporting import ExperimentTable
from repro.ml.common import BinaryClassifier
from repro.ml.meta import MetaClassifier
from repro.ml.naive_bayes import NaiveBayesClassifier
from repro.ml.rocchio import RocchioClassifier
from repro.ml.svm import LinearSVM
from repro.ml.xialpha import xi_alpha_estimate
from repro.text.features import AnalyzedDocument, TermPairSpace, TermSpace
from repro.text.tokenizer import tokenize_html
from repro.text.vectorizer import TfIdfVectorizer
from repro.web import PageRole, SyntheticWeb, WebGraphConfig

__all__ = ["MetaBenchResult", "run_meta_experiment"]

SPACES = {"term": TermSpace(), "pair": TermPairSpace(window=4)}


class _SpaceMember(BinaryClassifier):
    """Routes a per-space vector bundle to a member's own space."""

    def __init__(self, inner: BinaryClassifier, space: str) -> None:
        self.inner = inner
        self.space = space
        self.name = f"{inner.name}/{space}"

    def fit(self, vectors, labels):  # pragma: no cover - members pre-fitted
        raise NotImplementedError

    def decision(self, bundle) -> float:
        return self.inner.decision(bundle[self.space])


@dataclass
class MetaBenchResult:
    """Mean precision/recall of members and meta modes over the seeds."""

    rows: list[tuple[str, float, float, float]]
    """(name, precision, recall, abstention rate)"""
    seeds: tuple[int, ...]

    def table(self) -> ExperimentTable:
        table = ExperimentTable(
            "Meta classification (section 3.5)",
            ["Decision function", "Precision", "Recall", "Abstain rate"],
            note=(
                "paper: unanimity/weighting lift precision ~80% -> >90%; "
                f"means over seeds {list(self.seeds)}"
            ),
        )
        for name, precision, recall, abstain in self.rows:
            table.add_row(
                [name, round(precision, 3), round(recall, 3), round(abstain, 3)]
            )
        return table

    def precision_of(self, name: str) -> float:
        for row_name, precision, _recall, _abstain in self.rows:
            if row_name == name:
                return precision
        raise KeyError(name)

    def best_single_precision(self) -> float:
        return max(
            precision for name, precision, _r, _a in self.rows
            if not name.startswith("meta")
        )

    def mean_single_precision(self) -> float:
        singles = [
            precision for name, precision, _r, _a in self.rows
            if not name.startswith("meta")
        ]
        return sum(singles) / len(singles)


def _extract(web: SyntheticWeb, page) -> dict:
    html = web.renderer.render(page)
    doc = AnalyzedDocument(tokens=tokenize_html(html).tokens)
    return {name: space.extract(doc) for name, space in SPACES.items()}


def _one_run(
    seed: int,
    train_per_class: int,
    test_per_class: int,
    training_label_noise: float,
    web: SyntheticWeb | None,
    svm_cost: float = 0.05,
) -> dict[str, tuple[float, float, float]]:
    web = web or SyntheticWeb.generate(
        WebGraphConfig(
            seed=seed, target_researchers=120, other_researchers=60,
            universities=25, hubs_per_topic=4,
            background_hosts_per_category=8, pages_per_background_host=6,
            directory_pages_per_category=8,
        )
    )
    target = web.config.target_topic
    positive_roles = {PageRole.HOMEPAGE, PageRole.CV, PageRole.PUBLICATIONS}
    positives = [
        p for p in web.pages_by_topic(target) if p.role in positive_roles
    ]
    negatives = [
        p for p in web.pages
        if p.topic != target and p.role in (
            PageRole.HOMEPAGE, PageRole.CV, PageRole.BACKGROUND,
            PageRole.DIRECTORY,
        )
    ]
    rng = np.random.default_rng(seed)
    rng.shuffle(positives)
    rng.shuffle(negatives)
    pos_train = positives[:train_per_class]
    pos_test = positives[train_per_class:train_per_class + test_per_class]
    neg_train = negatives[:train_per_class]
    neg_test = negatives[train_per_class:train_per_class + test_per_class]

    vectorizers = {name: TfIdfVectorizer() for name in SPACES}
    train_counts = [_extract(web, p) for p in pos_train + neg_train]
    for counts in train_counts:
        for name, vectorizer in vectorizers.items():
            vectorizer.ingest(counts[name].keys())
    for vectorizer in vectorizers.values():
        vectorizer.refresh()

    def bundle(counts: dict) -> dict:
        return {
            name: vectorizers[name].vectorize_counts(counts[name])
            for name in SPACES
        }

    train_bundles = [bundle(c) for c in train_counts]
    labels = [1] * len(pos_train) + [-1] * len(neg_train)
    for i in range(len(labels)):
        if rng.random() < training_label_noise:
            labels[i] = -labels[i]

    test_bundles = [bundle(_extract(web, p)) for p in pos_test + neg_test]
    test_labels = [1] * len(pos_test) + [-1] * len(neg_test)

    # Each member trains on its own random subsample of the training
    # set (bagging) -- model averaging only pays off when member errors
    # are partly independent [17], and subsampling decorrelates the
    # damage done by the noisy labels.
    def subsample(vectors, member_index: int):
        member_rng = np.random.default_rng(seed * 101 + member_index)
        n = len(vectors)
        keep = member_rng.choice(n, size=max(int(n * 0.7), 4), replace=False)
        sub_vectors = [vectors[i] for i in keep]
        sub_labels = [labels[i] for i in keep]
        if len(set(sub_labels)) < 2:  # degenerate draw: fall back to all
            return vectors, labels
        return sub_vectors, sub_labels

    members: list[_SpaceMember] = []
    weights: list[float] = []
    member_index = 0
    for space in SPACES:
        vectors = [b[space] for b in train_bundles]
        sub_v, sub_l = subsample(vectors, member_index)
        svm = LinearSVM(C=svm_cost, seed=seed).fit(sub_v, sub_l)
        members.append(_SpaceMember(svm, space))
        weights.append(xi_alpha_estimate(svm, sub_l).precision)
        member_index += 1
        sub_v, sub_l = subsample(vectors, member_index)
        nb = NaiveBayesClassifier().fit(sub_v, sub_l)
        members.append(_SpaceMember(nb, space))
        weights.append(0.6)
        member_index += 1
    term_vectors = [b["term"] for b in train_bundles]
    sub_v, sub_l = subsample(term_vectors, member_index)
    rocchio = RocchioClassifier().fit(sub_v, sub_l)
    members.append(_SpaceMember(rocchio, "term"))
    weights.append(0.6)

    # Batch scoring: every member votes once over the whole test set
    # (one CSR matvec per SVM member), and each meta mode recombines the
    # same vote matrix instead of re-running the members per document.
    decision_matrix = np.vstack([
        member.inner.decision_batch(
            [bundle[member.space] for bundle in test_bundles]
        )
        for member in members
    ])
    votes_matrix = np.where(decision_matrix > 0, 1, -1)

    def evaluate_votes(predictions) -> tuple[float, float, float]:
        counts = BinaryCounts()
        for predicted, label in zip(predictions, test_labels):
            counts.update(int(predicted), label)
        return counts.precision, counts.recall, counts.abstain_rate

    results: dict[str, tuple[float, float, float]] = {}
    for row, member in zip(votes_matrix, members):
        results[member.name] = evaluate_votes(row)
    metas = {
        "meta: unanimous": MetaClassifier.unanimous(members),
        "meta: majority": MetaClassifier.majority(members),
        "meta: xi-alpha weighted": MetaClassifier.weighted(members, weights),
    }
    for name, meta in metas.items():
        results[name] = evaluate_votes([
            meta.verdict_from_votes(votes_matrix[:, column]).decision
            for column in range(votes_matrix.shape[1])
        ])
    return results


def run_meta_experiment(
    seeds: Sequence[int] = (23, 29, 31, 37),
    train_per_class: int = 24,
    test_per_class: int = 120,
    training_label_noise: float = 0.1,
    web: SyntheticWeb | None = None,
    svm_cost: float = 1.0,
) -> MetaBenchResult:
    """Average the member-vs-meta comparison over several seeds.

    At the default regime the reproduction lands almost exactly on the
    paper's numbers: mean single-classifier precision ~0.81, unanimous
    meta precision ~0.95 ("from values around 80 percent to values above
    90 percent").
    """
    accumulated: dict[str, list[tuple[float, float, float]]] = {}
    for seed in seeds:
        run = _one_run(
            seed, train_per_class, test_per_class, training_label_noise,
            web, svm_cost=svm_cost,
        )
        for name, triple in run.items():
            accumulated.setdefault(name, []).append(triple)
    rows = [
        (
            name,
            float(np.mean([t[0] for t in triples])),
            float(np.mean([t[1] for t in triples])),
            float(np.mean([t[2] for t in triples])),
        )
        for name, triples in accumulated.items()
    ]
    return MetaBenchResult(rows=rows, seeds=tuple(seeds))
