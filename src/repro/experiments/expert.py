"""Expert Web search experiment: Figures 4 and 5 (paper 5.3).

The paper hunts for "public domain open source implementations of the
ARIES recovery algorithm": a needle-in-a-haystack query for which a
plain keyword engine returns nothing useful.  The workflow:

1. query an external engine for "aries recovery method/algorithm" and
   intellectually select 7 reasonable seed documents (Figure 4);
2. run a short focused crawl from those seeds;
3. postprocess with the local search engine: keyword filter "source code
   release" with cosine ranking (Figure 5);
4. success = open-source project pages (the needles) in the top 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import BingoConfig, BingoEngine
from repro.experiments.reporting import ExperimentTable
from repro.search.engine import LocalSearchEngine, RankingWeights
from repro.search.seed_queries import ExternalSearchEngine, SeedHit
from repro.web import SyntheticWeb

__all__ = ["ExpertExperimentResult", "run_expert_experiment"]


@dataclass
class ExpertExperimentResult:
    """Seeds, crawl stats, and the post-processed top-10."""

    seed_hits: list[SeedHit]
    unfocused_needles_in_top10: int
    crawl_table1: dict[str, int]
    top10: list[tuple[float, str]]
    needles_in_top10: int
    needles_crawled: int
    needle_urls: set[str] = field(default_factory=set)

    def figure4(self) -> ExperimentTable:
        table = ExperimentTable(
            "Figure 4: Initial training documents",
            ["#", "Seed URL", "Role"],
            note="selected from the external engine's top 10",
        )
        for i, hit in enumerate(self.seed_hits, 1):
            table.add_row([i, hit.url, hit.page.role.value])
        return table

    def figure5(self) -> ExperimentTable:
        table = ExperimentTable(
            "Figure 5: Top 10 results for query 'source code release'",
            ["Score", "URL", "Needle?"],
            note=(
                f"{self.needles_in_top10} needle page(s) in the top 10; "
                f"unfocused baseline had {self.unfocused_needles_in_top10}"
            ),
        )
        for score, url in self.top10:
            table.add_row(
                [round(score, 3), url, "yes" if url in self.needle_urls else ""]
            )
        return table


def run_expert_experiment(
    seed: int = 7,
    crawl_fetch_budget: int = 700,
    learning_fetch_budget: int = 120,
    web: SyntheticWeb | None = None,
) -> ExpertExperimentResult:
    """Run the full expert-search workflow on the ARIES synthetic Web."""
    web = web or SyntheticWeb.generate_expert(seed=seed)
    external = ExternalSearchEngine(web)

    # Figure 4: seed selection from the unfocused engine's top 10.
    seed_hits = external.select_seeds(
        "aries recovery method algorithm", top_k=10, max_seeds=7
    )
    unfocused = external.query("source code release aries recovery", top_k=10)
    needle_urls = web.needle_urls()
    unfocused_needles = sum(hit.url in needle_urls for hit in unfocused)

    config = BingoConfig(
        seed=seed,
        learning_fetch_budget=learning_fetch_budget,
        retrain_interval=150,
        selected_features=1000,
        tf_preselection=4000,
    )
    engine = BingoEngine.for_expert(
        web, [hit.url for hit in seed_hits], topic="aries", config=config
    )
    report = engine.run(harvesting_fetch_budget=crawl_fetch_budget)

    # Figure 5: keyword filtering with cosine ranking over the *whole*
    # crawl database.  (The paper's own top-10 includes pages that were
    # not classified into the ARIES class -- the focused-crawl advantage
    # lies in the corpus the crawl collected, not in the class filter.)
    search = LocalSearchEngine(engine.crawler.documents)
    hits = search.search(
        "source code release",
        topic=None,
        weights=RankingWeights(cosine=1.0),
        top_k=10,
    )
    top10 = [(hit.score, hit.url) for hit in hits]
    needles_in_top10 = sum(url in needle_urls for _score, url in top10)
    needles_crawled = sum(
        doc.final_url in needle_urls for doc in engine.crawler.documents
    )
    return ExpertExperimentResult(
        seed_hits=seed_hits,
        unfocused_needles_in_top10=unfocused_needles,
        crawl_table1=report.table1_row(),
        top10=top10,
        needles_in_top10=needles_in_top10,
        needles_crawled=needles_crawled,
        needle_urls=needle_urls,
    )
