"""Portal generation experiment: Table 1 and Tables 2/3 (paper 5.2).

The paper seeds a single-topic "database research" crawl with two leading
researchers' homepages, pauses after 90 minutes (Table 2), resumes to 12
hours total (Table 3), and scores the confidence-ranked result list
against DBLP's publication-ranked author registry.

We replay the same protocol against the synthetic Web, scaled: the
registry holds hundreds (not 31,582) of authors, so cutoffs scale from
(1000 / 5000 / all vs top-1000) to (100 / 500 / all vs top-100) and the
two checkpoints are fetch budgets standing in for the two wall-clock
budgets.  Expected *shape* (not absolute numbers): the long crawl visits
roughly an order of magnitude more URLs, multiplies overall recall
several-fold, and improves top-cutoff precision markedly (paper: 27 ->
267 top-1000 authors in the top-1000 results; 218 -> 712 found overall).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import BingoConfig, BingoEngine
from repro.experiments.reporting import ExperimentTable
from repro.web import SyntheticWeb, WebGraphConfig
from repro.web.dblp import PortalScores

__all__ = [
    "PortalCheckpoint",
    "PortalExperimentResult",
    "bench_web_config",
    "bench_engine_config",
    "run_portal_experiment",
]


def bench_web_config(seed: int = 17) -> WebGraphConfig:
    """The benchmark Web: bigger than the test fixtures, laptop-scale."""
    return WebGraphConfig(
        seed=seed,
        target_researchers=300,
        other_researchers=70,
        universities=60,
        hubs_per_topic=8,
        background_hosts_per_category=25,
        pages_per_background_host=8,
        directory_pages_per_category=20,
    )


def bench_engine_config(seed: int = 17) -> BingoConfig:
    return BingoConfig(
        seed=seed,
        learning_fetch_budget=250,
        retrain_interval=400,
        selected_features=2000,
        tf_preselection=5000,
    )


@dataclass
class PortalCheckpoint:
    """One pause point ("90 minutes" / "12 hours")."""

    label: str
    table1: dict[str, int]
    scores: list[PortalScores]
    simulated_seconds: float


@dataclass
class PortalExperimentResult:
    """Both checkpoints plus the scaled evaluation parameters."""

    short: PortalCheckpoint
    long: PortalCheckpoint
    top_k: int
    cutoffs: list[int]
    registry_size: int
    web_size: int
    notes: list[str] = field(default_factory=list)

    def table1(self) -> ExperimentTable:
        table = ExperimentTable(
            "Table 1: Crawl summary data",
            ["Property", self.short.label, self.long.label],
            note="paper: 90 minutes vs 12 hours on the live Web",
        )
        labels = {
            "visited_urls": "Visited URLs",
            "stored_pages": "Stored pages",
            "extracted_links": "Extracted links",
            "positively_classified": "Positively classified",
            "visited_hosts": "Visited hosts",
            "max_crawling_depth": "Max crawling depth",
        }
        for key, label in labels.items():
            table.add_row([label, self.short.table1[key], self.long.table1[key]])
        return table

    def _score_table(
        self, title: str, checkpoint: PortalCheckpoint
    ) -> ExperimentTable:
        table = ExperimentTable(
            title,
            [
                "Best crawl results",
                f"Top {self.top_k} registry",
                "All authors",
            ],
            note=(
                f"registry holds {self.registry_size} authors; paper used "
                "DBLP with 31,582"
            ),
        )
        for row in checkpoint.scores:
            table.add_row([row.cutoff, row.found_top, row.found_all])
        return table

    def table2(self) -> ExperimentTable:
        return self._score_table(
            f"Table 2: BINGO! precision ({self.short.label})", self.short
        )

    def table3(self) -> ExperimentTable:
        return self._score_table(
            f"Table 3: BINGO! precision ({self.long.label})", self.long
        )


def run_portal_experiment(
    seed: int = 17,
    short_budget: int = 700,
    long_budget: int = 7000,
    top_k: int = 100,
    cutoffs: tuple[int, ...] = (100, 500, 0),
    web: SyntheticWeb | None = None,
) -> PortalExperimentResult:
    """Run the two-checkpoint portal crawl and score both checkpoints.

    The crawl is paused at ``short_budget`` fetches, scored, resumed to
    ``long_budget`` total fetches, and scored again -- exactly the
    pause/resume protocol of the paper.
    """
    if short_budget >= long_budget:
        raise ValueError("short_budget must be smaller than long_budget")
    web = web or SyntheticWeb.generate(bench_web_config(seed))
    config = bench_engine_config(seed)
    engine = BingoEngine.for_portal(web, config=config)
    registry = web.registry(web.config.target_topic)
    topic = f"ROOT/{web.config.target_topic}"

    learning = engine.run_learning_phase()
    first = engine.run_harvesting_phase(
        fetch_budget=max(short_budget - learning.stats.visited_urls, 1)
    )

    def checkpoint(label: str) -> PortalCheckpoint:
        total = {"visited_urls": 0, "stored_pages": 0, "extracted_links": 0,
                 "positively_classified": 0}
        # cumulative Table-1 row over everything crawled so far
        stats_rows = [learning.stats, first.stats]
        if len(phases) == 3:
            stats_rows.append(phases[2].stats)
        hosts: set[str] = set()
        max_depth = 0
        sim = 0.0
        for stats in stats_rows:
            total["visited_urls"] += stats.visited_urls
            total["stored_pages"] += stats.stored_pages
            total["extracted_links"] += stats.extracted_links
            total["positively_classified"] += stats.positively_classified
            hosts |= stats.hosts_visited
            max_depth = max(max_depth, stats.max_depth)
            sim += stats.simulated_seconds
        table1 = dict(total)
        table1["visited_hosts"] = len(hosts)
        table1["max_crawling_depth"] = max_depth
        ranked = engine.ranked_result_urls(topic)
        scores = registry.score(ranked, cutoffs=list(cutoffs), top_k=top_k)
        return PortalCheckpoint(
            label=label, table1=table1, scores=scores,
            simulated_seconds=sim,
        )

    phases = [learning, first]
    short = checkpoint("short crawl")
    second = engine.run_harvesting_phase(
        fetch_budget=long_budget - short_budget
    )
    phases.append(second)
    long = checkpoint("long crawl")

    return PortalExperimentResult(
        short=short,
        long=long,
        top_k=top_k,
        cutoffs=[c if c else len(engine.ranked_result_urls(topic)) for c in cutoffs],
        registry_size=len(registry),
        web_size=web.size,
        notes=[
            f"retrainings: {engine.retrainings}",
            f"archetypes promoted: {engine.archetypes_added}",
        ],
    )
