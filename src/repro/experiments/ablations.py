"""Design-choice ablations (experiments A1-A4 in DESIGN.md).

Each ablation isolates one of the improvements sections 3.1-3.4 of the
paper introduced after "fairly mixed success" with the first prototype:

* **A1** sharp vs soft focus x tunnelling on/off (section 3.3);
* **A2** archetype mean-confidence threshold on/off -- the topic-drift
  guard (section 3.2);
* **A3** systematic vs arbitrary negative examples for OTHERS (3.1);
* **A4** feature spaces: terms vs term pairs vs anchors vs combined (3.4).

Because the synthetic Web knows every page's true topic, ablations can
measure *true* precision (accepted documents whose underlying page truly
belongs to the target topic) and true recall against the page inventory
-- something the paper could only estimate by hand.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core import BingoConfig
from repro.core.crawler import SHARP, SOFT, FocusedCrawler, PhaseSettings
from repro.experiments.metrics import BinaryCounts, ranking_precision_at_k
from repro.experiments.reporting import ExperimentTable
from repro.ml.svm import LinearSVM
from repro.ml.xialpha import xi_alpha_estimate
from repro.text.features import (
    AnalyzedDocument,
    AnchorTextSpace,
    CombinedSpace,
    TermPairSpace,
    TermSpace,
)
from repro.text.stopwords import ANCHOR_STOPWORDS
from repro.text.tokenizer import tokenize, tokenize_html
from repro.text.vectorizer import TfIdfVectorizer
from repro.web import PageRole, SyntheticWeb, WebGraphConfig

__all__ = [
    "FocusAblationResult",
    "run_focus_ablation",
    "ArchetypeAblationResult",
    "run_archetype_ablation",
    "NegativesAblationResult",
    "run_negatives_ablation",
    "FeatureSpaceAblationResult",
    "run_feature_space_ablation",
    "ClassifierAblationResult",
    "run_classifier_ablation",
]


def _ablation_web(seed: int = 53) -> SyntheticWeb:
    return SyntheticWeb.generate(
        WebGraphConfig(
            seed=seed, target_researchers=120, other_researchers=40,
            universities=30, hubs_per_topic=5,
            background_hosts_per_category=10, pages_per_background_host=5,
            directory_pages_per_category=8,
        )
    )


def _true_topic(web: SyntheticWeb, doc) -> str | None:
    if doc.page_id is None:
        return None
    return web.pages[doc.page_id].topic


# ---------------------------------------------------------------------------
# A1: focus rules and tunnelling
# ---------------------------------------------------------------------------


@dataclass
class FocusAblationResult:
    rows: list[tuple[str, int, int, float, int, int]]
    """(variant, visited, accepted, true precision, target pages found,
    hidden authors reached)"""

    def table(self) -> ExperimentTable:
        table = ExperimentTable(
            "A1: focus strategy x tunnelling (section 3.3)",
            ["Variant", "Visited", "Accepted", "True precision",
             "Target pages found", "Hidden authors reached"],
            note=(
                "hidden authors are linked only from topic-unspecific "
                "welcome pages -- tunnelling territory"
            ),
        )
        for row in self.rows:
            variant, visited, accepted, precision, found, hidden = row
            table.add_row(
                [variant, visited, accepted, round(precision, 3), found,
                 hidden]
            )
        return table

    def variant(self, name: str) -> tuple[int, int, float, int, int]:
        for variant, *rest in self.rows:
            if variant == name:
                return tuple(rest)
        raise KeyError(name)


def run_focus_ablation(
    seed: int = 53,
    budget: int = 500,
    web: SyntheticWeb | None = None,
) -> FocusAblationResult:
    """Crawl the same Web under the four focus/tunnelling combinations."""
    web = web or SyntheticWeb.generate(
        WebGraphConfig(
            seed=seed, target_researchers=120, other_researchers=40,
            universities=30, hubs_per_topic=5,
            background_hosts_per_category=10, pages_per_background_host=5,
            directory_pages_per_category=8,
            welcome_only_rate=0.5,  # half the homepages hide behind
                                    # topic-unspecific welcome pages
        )
    )
    target = web.config.target_topic
    topic = f"ROOT/{target}"
    hidden_homepages = {
        web.researchers[a].homepage_page_id
        for a in web.welcome_only
        if web.researchers[a].topic == target
    }
    variants = [
        ("sharp, no tunnelling", SHARP, False),
        ("sharp + tunnelling", SHARP, True),
        ("soft, no tunnelling", SOFT, False),
        ("soft + tunnelling", SOFT, True),
    ]
    # One fixed classifier for all variants, so the comparison isolates
    # the crawl policy (the engine's learning phase always tunnels and
    # would blur the contrast).
    config = BingoConfig(
        seed=seed, selected_features=800, tf_preselection=3000,
    )
    classifier = _train_topic_classifier(web, target, config)
    seeds = web.seed_homepages(3, topic=target)
    rows = []
    for name, focus, tunnelling in variants:
        crawler = FocusedCrawler(web, classifier, config)
        crawler.seed(seeds, topic=topic, priority=10.0)
        settings = PhaseSettings(
            name=name, focus=focus, tunnelling=tunnelling,
            decision_mode="single",
            fetch_budget=budget,
        )
        stats = crawler.crawl(settings)
        accepted = [
            doc for doc in crawler.documents if doc.topic == topic
        ]
        correct = sum(
            1 for doc in accepted if _true_topic(web, doc) == target
        )
        found_pages = {
            doc.page_id for doc in crawler.documents
            if _true_topic(web, doc) == target
        }
        hidden_reached = len(found_pages & hidden_homepages)
        precision = correct / len(accepted) if accepted else 0.0
        rows.append(
            (name, stats.visited_urls, len(accepted), precision,
             len(found_pages), hidden_reached)
        )
    return FocusAblationResult(rows=rows)


def _train_topic_classifier(web: SyntheticWeb, target: str, config: BingoConfig):
    """A single-topic classifier trained on paper pages vs directory pages."""
    from repro.core.classifier import HierarchicalClassifier
    from repro.core.ontology import TopicTree

    space = TermSpace()

    def doc_of(page):
        html = web.renderer.render(page)
        return {
            "term": space.extract(
                AnalyzedDocument(tokens=tokenize_html(html).tokens)
            )
        }

    positives = [
        doc_of(p)
        for p in web.pages_by_topic(target)
        if p.role == PageRole.PAPER
    ][:25]
    negatives = [doc_of(p) for p in web.negative_example_pages(25)]
    tree = TopicTree.from_leaves([target])
    classifier = HierarchicalClassifier(tree, config)
    training = {f"ROOT/{target}": positives, "ROOT/OTHERS": negatives}
    for docs in training.values():
        for doc in docs:
            classifier.ingest(doc)
    classifier.train(training)
    return classifier


# ---------------------------------------------------------------------------
# A2: archetype confidence threshold (topic drift)
# ---------------------------------------------------------------------------


@dataclass
class ArchetypeAblationResult:
    rows: list[tuple[str, float, float, float]]
    """(variant, mean archetypes added, mean training purity,
    mean held-out true precision)"""
    seeds: tuple[int, ...] = ()

    def table(self) -> ExperimentTable:
        table = ExperimentTable(
            "A2: archetype confidence threshold (section 3.2)",
            ["Variant", "Archetypes added", "Training purity",
             "Held-out true precision"],
            note=(
                "purity = promoted training docs truly of the target "
                "topic; precision = ranking precision@k on a held-out "
                f"target/sibling mix; means over seeds {list(self.seeds)}"
            ),
        )
        for variant, added, purity, precision in self.rows:
            table.add_row(
                [variant, round(added, 1), round(purity, 3),
                 round(precision, 3)]
            )
        return table

    def purity_of(self, variant: str) -> float:
        for name, _added, purity, _precision in self.rows:
            if name == variant:
                return purity
        raise KeyError(variant)

    def precision_of(self, variant: str) -> float:
        for name, _added, _purity, precision in self.rows:
            if name == variant:
                return precision
        raise KeyError(variant)


def run_archetype_ablation(
    seeds: tuple[int, ...] = (59, 61, 67, 71),
    rounds: int = 5,
    promotions_per_round: int = 20,
    web: SyntheticWeb | None = None,
) -> ArchetypeAblationResult:
    """Averaged drift comparison over several seeds (drift is a runaway
    phenomenon: single runs may or may not tip over)."""
    accumulated: dict[str, list[tuple[float, float, float]]] = {}
    for seed in seeds:
        for name, triple in _archetype_one_seed(
            seed, rounds, promotions_per_round, web
        ).items():
            accumulated.setdefault(name, []).append(triple)
    rows = [
        (
            name,
            float(np.mean([t[0] for t in triples])),
            float(np.mean([t[1] for t in triples])),
            float(np.mean([t[2] for t in triples])),
        )
        for name, triples in accumulated.items()
    ]
    return ArchetypeAblationResult(rows=rows, seeds=tuple(seeds))


def _archetype_one_seed(
    seed: int,
    rounds: int,
    promotions_per_round: int,
    web: SyntheticWeb | None = None,
) -> dict[str, tuple[float, float, float]]:
    """Iterated archetype promotion with and without the admission rule.

    This is a controlled version of the retraining loop: each round a
    candidate pool (target pages mixed with sibling-topic and background
    pages) is classified, positively classified candidates are promoted
    through :func:`select_archetypes`, and the classifier is retrained on
    the grown training set.  Without the mean-confidence threshold,
    borderline sibling pages that sneak past the classifier get promoted,
    poisoning the next round's model -- the compounding "topic drift" of
    section 3.2.  The threshold admits only candidates more confident
    than the current training mean, which blocks the borderline poison.
    """
    from collections import Counter as _Counter

    from repro.core.archetypes import select_archetypes
    from repro.core.classifier import HierarchicalClassifier
    from repro.core.ontology import TopicTree

    web = web or SyntheticWeb.generate(
        WebGraphConfig(
            seed=seed, target_researchers=120, other_researchers=60,
            universities=30, hubs_per_topic=5,
            background_hosts_per_category=10, pages_per_background_host=5,
            directory_pages_per_category=8,
            vocab_sibling_overlap=0.45,   # confusable siblings
            interdisciplinary_rate=0.35,  # heterogeneous researcher pages
        )
    )
    target = web.config.target_topic
    topic = f"ROOT/{target}"
    space = TermSpace()

    def doc_of(page) -> dict[str, _Counter]:
        html = web.renderer.render(page)
        return {
            "term": space.extract(
                AnalyzedDocument(tokens=tokenize_html(html).tokens)
            )
        }

    rng_master = np.random.default_rng(seed)
    # paper-faithful candidate mix: dense papers are the good archetypes
    # hiding among borderline homepages/CVs and sibling material
    target_pages = [
        p for p in web.pages_by_topic(target)
        if p.role in (
            PageRole.HOMEPAGE, PageRole.PUBLICATIONS, PageRole.CV,
            PageRole.PAPER,
        )
    ]
    sibling_pages = [
        p for p in web.pages
        if p.topic in web.config.research_topics and p.topic != target
        and p.role in (
            PageRole.HOMEPAGE, PageRole.PUBLICATIONS, PageRole.CV,
            PageRole.PAPER,
        )
    ]
    background_pages = web.pages_by_role(PageRole.BACKGROUND)
    rng_master.shuffle(target_pages)
    rng_master.shuffle(sibling_pages)
    rng_master.shuffle(background_pages)
    seeds = target_pages[:3]
    held_out = target_pages[3:63] + sibling_pages[:60]

    results: dict[str, tuple[float, float, float]] = {}
    for name, enforce in (
        ("threshold on (paper 3.2)", True),
        ("threshold off", False),
    ):
        config = BingoConfig(
            seed=seed, selected_features=250, tf_preselection=1500,
        )
        tree = TopicTree.from_leaves([target])
        classifier = HierarchicalClassifier(tree, config)
        training: dict[int, tuple[dict, float]] = {
            page.page_id: (doc_of(page), 0.0) for page in seeds
        }
        negatives = [
            doc_of(p) for p in web.negative_example_pages(12, seed=seed)
        ]
        pool_rng = np.random.default_rng(seed + 1)

        def retrain() -> None:
            sets = {
                topic: [doc for doc, _conf in training.values()],
                "ROOT/OTHERS": negatives,
            }
            for docs in sets.values():
                for doc in docs:
                    classifier.ingest(doc)
            classifier.train(sets)

        retrain()
        promoted_ids: list[int] = []
        for round_index in range(rounds):
            # Bootstrap warm-up: with only a handful of seeds the paper
            # itself "did not enforce the thresholding scheme" (5.2); the
            # variants start differing once the training set has grown.
            enforce_now = enforce and round_index > 0
            # a thin stream of true-topic pages amid plenty of sibling
            # material: the regime where promotion slots outnumber the
            # clearly-on-topic candidates
            pool = (
                list(pool_rng.choice(target_pages[63:], 18, replace=False))
                + list(pool_rng.choice(sibling_pages[60:], 60, replace=False))
                + list(pool_rng.choice(background_pages, 20, replace=False))
            )
            # score the whole candidate pool in one batch descent
            pool_docs = [doc_of(page) for page in pool]
            pool_results = classifier.classify_batch(pool_docs)
            candidates = [
                (page, doc, result.confidence)
                for page, doc, result in zip(pool, pool_docs, pool_results)
                if result.accepted
            ]
            candidates.sort(key=lambda t: -t[2])
            confidence_candidates = [
                (page.page_id, conf) for page, _doc, conf in candidates
            ]
            # re-score the current training docs under the current model
            training_confidences = {
                pid: classifier.confidence_for(doc, topic)
                for pid, (doc, _old) in training.items()
            }
            decision = select_archetypes(
                confidence_candidates,
                confidence_candidates,  # authorities stand-in: same pool
                training_confidences,
                {page.page_id: conf for page, _d, conf in candidates},
                max_new=promotions_per_round,
                enforce_threshold=enforce_now,
                confidence_factor=0.9,
                protected={page.page_id for page in seeds},
            )
            by_id = {page.page_id: doc for page, doc, _c in candidates}
            for page_id, confidence, _source in decision.added:
                training[page_id] = (by_id[page_id], confidence)
                promoted_ids.append(page_id)
            for page_id in decision.removed:
                training.pop(page_id, None)
            retrain()

        pure = sum(
            1 for pid in promoted_ids if web.pages[pid].topic == target
        )
        purity = pure / len(promoted_ids) if promoted_ids else 1.0
        # Threshold-free evaluation: rank the held-out mix by the final
        # model's confidence and measure precision at the true positive
        # count.  A drifted model ranks sibling pages above true target
        # pages, dragging this down.
        precision = ranking_precision_at_k(
            (
                (classifier.confidence_for(doc_of(page), topic),
                 page.topic == target)
                for page in held_out
            )
        )
        results[name] = (float(len(promoted_ids)), purity, precision)
    return results


# ---------------------------------------------------------------------------
# A3: negative examples for OTHERS
# ---------------------------------------------------------------------------


@dataclass
class NegativesAblationResult:
    rows: list[tuple[str, float, float]]
    """(variant, held-out precision, held-out recall)"""

    def table(self) -> ExperimentTable:
        table = ExperimentTable(
            "A3: OTHERS population (section 3.1)",
            ["Negative examples", "Precision", "Recall"],
            note="systematic directory coverage vs a few arbitrary pages",
        )
        for variant, precision, recall in self.rows:
            table.add_row([variant, round(precision, 3), round(recall, 3)])
        return table

    def precision_of(self, variant: str) -> float:
        for name, precision, _recall in self.rows:
            if name == variant:
                return precision
        raise KeyError(variant)


def run_negatives_ablation(
    seed: int = 61,
    web: SyntheticWeb | None = None,
    test_per_class: int = 150,
) -> NegativesAblationResult:
    """Train the same topic classifier under two OTHERS regimes."""
    web = web or _ablation_web(seed)
    target = web.config.target_topic
    rng = np.random.default_rng(seed)
    space = TermSpace()

    def counts_of(page) -> Counter:
        html = web.renderer.render(page)
        return space.extract(
            AnalyzedDocument(tokens=tokenize_html(html).tokens)
        )

    positives = [
        p for p in web.pages_by_topic(target)
        if p.role in (PageRole.HOMEPAGE, PageRole.PUBLICATIONS)
    ]
    rng.shuffle(positives)
    pos_train = [counts_of(p) for p in positives[:20]]

    # systematic: directory pages spanning all categories (the paper's
    # ~50 Yahoo top-level pages); arbitrary: 5 pages of ONE category
    systematic_pages = web.negative_example_pages(50, seed=seed)
    one_category = [
        p for p in web.pages_by_role(PageRole.BACKGROUND)
        if p.topic == web.config.background_categories[0]
    ]
    arbitrary_pages = one_category[:5]

    test_pool = [
        p for p in web.pages
        if p.page_id not in {q.page_id for q in positives[:20]}
        and p.role in (
            PageRole.HOMEPAGE, PageRole.PUBLICATIONS, PageRole.BACKGROUND,
            PageRole.DIRECTORY, PageRole.CV,
        )
    ]
    rng.shuffle(test_pool)
    test_pages = test_pool[: 2 * test_per_class]

    rows = []
    for name, negative_pages in (
        ("systematic (50 directory pages)", systematic_pages),
        ("arbitrary (5 same-category pages)", arbitrary_pages),
    ):
        neg_train = [counts_of(p) for p in negative_pages]
        vectorizer = TfIdfVectorizer()
        for c in pos_train + neg_train:
            vectorizer.ingest(c.keys())
        vectorizer.refresh()
        vectors = [vectorizer.vectorize_counts(c) for c in pos_train + neg_train]
        labels = [1] * len(pos_train) + [-1] * len(neg_train)
        svm = LinearSVM(C=1.0, seed=seed).fit(vectors, labels)
        counts = BinaryCounts()
        for page in test_pages:
            vector = vectorizer.vectorize_counts(counts_of(page))
            counts.update(
                svm.predict(vector), 1 if page.topic == target else -1
            )
        rows.append((name, counts.precision, counts.recall))
    return NegativesAblationResult(rows=rows)


# ---------------------------------------------------------------------------
# A4: feature spaces
# ---------------------------------------------------------------------------


@dataclass
class FeatureSpaceAblationResult:
    rows: list[tuple[str, float, float, float]]
    """(space, xi-alpha precision estimate, held-out precision, recall)"""

    def table(self) -> ExperimentTable:
        table = ExperimentTable(
            "A4: feature spaces (section 3.4)",
            ["Feature space", "xi-alpha estimate", "Precision", "Recall"],
            note="the xi-alpha estimate drives BINGO!'s model selection",
        )
        for space, estimate, precision, recall in self.rows:
            table.add_row(
                [space, round(estimate, 3), round(precision, 3),
                 round(recall, 3)]
            )
        return table


def _incoming_anchor_terms(web: SyntheticWeb) -> dict[int, list[str]]:
    """Anchor-text stems pointing at each page, from the link structure."""
    incoming: dict[int, list[str]] = {}
    for source in web.pages:
        for target_id in source.out_links:
            text = web.renderer.anchor_text(source, web.pages[target_id])
            stems = [
                token.stem
                for token in tokenize(text, stopwords=ANCHOR_STOPWORDS)
            ]
            if stems:
                incoming.setdefault(target_id, []).extend(stems)
    return incoming


def run_feature_space_ablation(
    seed: int = 67,
    train_per_class: int = 25,
    test_per_class: int = 100,
    web: SyntheticWeb | None = None,
) -> FeatureSpaceAblationResult:
    """Single terms vs pairs vs anchors vs a combined space."""
    web = web or _ablation_web(seed)
    target = web.config.target_topic
    rng = np.random.default_rng(seed)
    incoming = _incoming_anchor_terms(web)
    spaces = {
        "terms": TermSpace(),
        "term pairs": TermPairSpace(window=4),
        "anchors": AnchorTextSpace(),
        "terms + pairs + anchors": CombinedSpace(
            [TermSpace(), TermPairSpace(window=4), AnchorTextSpace()]
        ),
    }

    def analyzed(page) -> AnalyzedDocument:
        html = web.renderer.render(page)
        return AnalyzedDocument(
            tokens=tokenize_html(html).tokens,
            incoming_anchor_terms=incoming.get(page.page_id, []),
        )

    positives = [
        p for p in web.pages_by_topic(target)
        if p.role in (PageRole.HOMEPAGE, PageRole.CV)
    ]
    negatives = [
        p for p in web.pages
        if p.topic != target and p.role in (
            PageRole.HOMEPAGE, PageRole.CV, PageRole.BACKGROUND,
        )
    ]
    rng.shuffle(positives)
    rng.shuffle(negatives)
    pos = positives[: train_per_class + test_per_class]
    neg = negatives[: train_per_class + test_per_class]
    pos_docs = [analyzed(p) for p in pos]
    neg_docs = [analyzed(p) for p in neg]

    rows = []
    labels = [1] * train_per_class + [-1] * train_per_class
    test_labels = (
        [1] * (len(pos_docs) - train_per_class)
        + [-1] * (len(neg_docs) - train_per_class)
    )
    for name, feature_space in spaces.items():
        train_counts = [
            feature_space.extract(d)
            for d in pos_docs[:train_per_class] + neg_docs[:train_per_class]
        ]
        test_counts = [
            feature_space.extract(d)
            for d in pos_docs[train_per_class:] + neg_docs[train_per_class:]
        ]
        vectorizer = TfIdfVectorizer()
        for c in train_counts:
            vectorizer.ingest(c.keys())
        vectorizer.refresh()
        train_vectors = [vectorizer.vectorize_counts(c) for c in train_counts]
        svm = LinearSVM(C=1.0, seed=seed).fit(train_vectors, labels)
        estimate = xi_alpha_estimate(svm, labels)
        measured = BinaryCounts()
        for counts, label in zip(test_counts, test_labels):
            measured.update(
                svm.predict(vectorizer.vectorize_counts(counts)), label
            )
        rows.append(
            (name, estimate.precision, measured.precision, measured.recall)
        )
    return FeatureSpaceAblationResult(rows=rows)


# ---------------------------------------------------------------------------
# A6: node-classifier choice (section 1.2's learner menu)
# ---------------------------------------------------------------------------


@dataclass
class ClassifierAblationResult:
    rows: list[tuple[str, int, int, float, int]]
    """(learner, visited, accepted, true precision, target pages found)"""

    def table(self) -> ExperimentTable:
        table = ExperimentTable(
            "A6: node classifier choice (section 1.2)",
            ["Learner", "Visited", "Accepted", "True precision",
             "Target pages found"],
            note=(
                "same Web, seeds and budget; only the per-topic decision "
                "model differs (the paper settles on linear SVMs)"
            ),
        )
        for learner, visited, accepted, precision, found in self.rows:
            table.add_row(
                [learner, visited, accepted, round(precision, 3), found]
            )
        return table

    def row_of(self, learner: str) -> tuple[int, int, float, int]:
        for name, *rest in self.rows:
            if name == learner:
                return tuple(rest)
        raise KeyError(learner)


def run_classifier_ablation(
    seed: int = 89,
    budget: int = 400,
    learners: tuple[str, ...] = ("svm", "maxent", "naive-bayes", "rocchio"),
    web: SyntheticWeb | None = None,
) -> ClassifierAblationResult:
    """Crawl the same Web once per node-learner choice.

    The paper (1.2) lists Naive Bayes, Maximum Entropy and SVMs as the
    classifier menu and picks linear SVMs; this ablation shows how the
    crawl fares under each choice.  Soft focus + tunnelling throughout.
    """
    web = web or _ablation_web(seed)
    target = web.config.target_topic
    topic = f"ROOT/{target}"
    seeds = web.seed_homepages(3, topic=target)
    rows = []
    for learner in learners:
        config = BingoConfig(
            seed=seed, selected_features=800, tf_preselection=3000,
            node_classifier=learner,
        )
        classifier = _train_topic_classifier(web, target, config)
        crawler = FocusedCrawler(web, classifier, config)
        crawler.seed(seeds, topic=topic, priority=10.0)
        stats = crawler.crawl(
            PhaseSettings(
                name=learner, focus=SOFT, tunnelling=True,
                decision_mode="single", fetch_budget=budget,
            )
        )
        accepted = [doc for doc in crawler.documents if doc.topic == topic]
        correct = sum(
            1 for doc in accepted if _true_topic(web, doc) == target
        )
        found = {
            doc.page_id for doc in crawler.documents
            if _true_topic(web, doc) == target
        }
        precision = correct / len(accepted) if accepted else 0.0
        rows.append(
            (learner, stats.visited_urls, len(accepted), precision,
             len(found))
        )
    return ClassifierAblationResult(rows=rows)
