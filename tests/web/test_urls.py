"""Tests for URL parsing, normalisation and the crawl sanity limits."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.web.urls import (
    MAX_URL_LENGTH,
    is_crawlable_url,
    join_url,
    normalize_url,
    parse_url,
    url_hash,
)


class TestParseUrl:
    def test_basic(self) -> None:
        p = parse_url("http://www.example.com/a/b.html")
        assert p is not None
        assert p.scheme == "http"
        assert p.host == "www.example.com"
        assert p.path == "/a/b.html"
        assert p.url == "http://www.example.com/a/b.html"

    def test_missing_path_defaults_to_root(self) -> None:
        p = parse_url("http://example.com")
        assert p is not None
        assert p.path == "/"

    def test_non_http_scheme_rejected(self) -> None:
        assert parse_url("ftp://example.com/x") is None
        assert parse_url("mailto:joe@example.com") is None

    def test_relative_is_not_absolute(self) -> None:
        assert parse_url("/just/a/path") is None
        assert parse_url("page.html") is None

    def test_host_lowercased(self) -> None:
        p = parse_url("HTTP://WWW.Example.COM/Path")
        assert p is not None
        assert p.host == "www.example.com"
        assert p.path == "/Path"  # paths stay case-sensitive

    def test_domain(self) -> None:
        assert parse_url("http://a.b.example.com/").domain == "example.com"
        assert parse_url("http://example.com/").domain == "example.com"

    def test_directory(self) -> None:
        assert parse_url("http://h/a/b/c.html").directory == "/a/b/"
        assert parse_url("http://h/").directory == "/"


class TestNormalize:
    def test_dot_segments_collapsed(self) -> None:
        assert (
            normalize_url("http://h/a/./b/../c.html") == "http://h/a/c.html"
        )

    def test_fragment_dropped(self) -> None:
        assert normalize_url("http://h/a.html#sec2") == "http://h/a.html"

    def test_parent_of_root_clamped(self) -> None:
        assert normalize_url("http://h/../../x") == "http://h/x"

    def test_trailing_slash_preserved(self) -> None:
        assert normalize_url("http://h/a/b/") == "http://h/a/b/"

    def test_invalid_returns_none(self) -> None:
        assert normalize_url("not a url") is None


class TestJoin:
    def test_absolute_href_wins(self) -> None:
        assert (
            join_url("http://a/x.html", "http://b/y.html") == "http://b/y.html"
        )

    def test_root_relative(self) -> None:
        assert join_url("http://a/d/x.html", "/y.html") == "http://a/y.html"

    def test_document_relative(self) -> None:
        assert join_url("http://a/d/x.html", "y.html") == "http://a/d/y.html"

    def test_dotdot_relative(self) -> None:
        assert join_url("http://a/d/e/x.html", "../y.html") == "http://a/d/y.html"

    def test_protocol_relative(self) -> None:
        assert join_url("https://a/x", "//b/y") == "https://b/y"

    def test_invalid_base(self) -> None:
        assert join_url("garbage", "y.html") is None


class TestHashAndLimits:
    def test_url_hash_stable_and_64bit(self) -> None:
        h = url_hash("http://example.com/x")
        assert h == url_hash("http://example.com/x")
        assert 0 <= h < 2**64

    def test_url_hash_differs_for_different_urls(self) -> None:
        assert url_hash("http://a/") != url_hash("http://b/")

    def test_overlong_url_not_crawlable(self) -> None:
        url = "http://h/" + "a" * MAX_URL_LENGTH
        assert not is_crawlable_url(url)

    def test_overlong_hostname_not_crawlable(self) -> None:
        url = "http://" + "h" * 300 + ".com/"
        assert not is_crawlable_url(url)

    def test_normal_url_crawlable(self) -> None:
        assert is_crawlable_url("http://example.com/a/b.html")

    def test_garbage_not_crawlable(self) -> None:
        assert not is_crawlable_url("javascript:void(0)")


@given(st.text(max_size=50))
def test_parse_never_crashes(text: str) -> None:
    parse_url(text)
    normalize_url(text)
    is_crawlable_url(text)


@given(st.from_regex(r"http://[a-z]{1,10}\.com(/[a-z0-9]{0,8}){0,4}/?", fullmatch=True))
def test_normalize_idempotent(url: str) -> None:
    once = normalize_url(url)
    assert once is not None
    assert normalize_url(once) == once
