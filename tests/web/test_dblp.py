"""Tests for the DBLP-style registry and the found-author metric."""

from __future__ import annotations

import pytest

from repro.web.dblp import DblpRegistry
from repro.web.model import Researcher


def researcher(author_id: int, pubs: int, url: str, topic="databases") -> Researcher:
    return Researcher(
        author_id=author_id, name=f"r{author_id}", topic=topic,
        publication_count=pubs, homepage_page_id=author_id,
        homepage_url=url,
    )


@pytest.fixture()
def registry() -> DblpRegistry:
    return DblpRegistry(
        [
            researcher(0, 258, "http://u0.edu/~alice/index.html"),
            researcher(1, 100, "http://u1.edu/~bob/index.html"),
            researcher(2, 40, "http://u0.edu/~carol/index.html"),
            researcher(3, 5, "http://u2.edu/~dave/index.html", topic="ir"),
        ]
    )


class TestRegistry:
    def test_ranked_by_publications(self, registry: DblpRegistry) -> None:
        assert [r.author_id for r in registry.top_authors(2)] == [0, 1]

    def test_topic_filter(self) -> None:
        filtered = DblpRegistry(
            [
                researcher(0, 10, "http://u/~a/index.html", topic="databases"),
                researcher(1, 90, "http://u/~b/index.html", topic="ir"),
            ],
            topic="databases",
        )
        assert len(filtered) == 1

    def test_homepage_itself_counts(self, registry: DblpRegistry) -> None:
        assert registry.author_of_url("http://u0.edu/~alice/index.html") == 0

    def test_page_underneath_counts(self, registry: DblpRegistry) -> None:
        assert registry.author_of_url("http://u0.edu/~alice/papers/p1.pdf") == 0

    def test_unrelated_page_does_not_count(self, registry: DblpRegistry) -> None:
        assert registry.author_of_url("http://u0.edu/~zed/index.html") is None

    def test_sibling_directory_not_confused(self, registry: DblpRegistry) -> None:
        # ~aliceX is not underneath ~alice/
        assert registry.author_of_url("http://u0.edu/~aliceX/p.html") is None

    def test_found_authors_distinct(self, registry: DblpRegistry) -> None:
        found = registry.found_authors(
            [
                "http://u0.edu/~alice/index.html",
                "http://u0.edu/~alice/cv.html",
                "http://u1.edu/~bob/pubs.html",
                "http://elsewhere.com/x",
            ]
        )
        assert found == {0, 1}

    def test_score_rows(self, registry: DblpRegistry) -> None:
        ranked = [
            "http://u2.edu/~dave/index.html",     # rank 1: dave (not top-2)
            "http://u0.edu/~alice/pubs.html",     # rank 2: alice (top-2)
            "http://noise.example/x",             # rank 3: nothing
            "http://u1.edu/~bob/index.html",      # rank 4: bob (top-2)
        ]
        rows = registry.score(ranked, cutoffs=[2, 0], top_k=2)
        first, full = rows
        assert first.cutoff == 2
        assert first.found_top == 1   # alice only
        assert first.found_all == 2   # dave + alice
        assert full.cutoff == 4
        assert full.found_top == 2
        assert full.found_all == 3

    def test_recall_monotone_in_cutoff(self, registry: DblpRegistry) -> None:
        ranked = [
            "http://u0.edu/~alice/index.html",
            "http://u1.edu/~bob/index.html",
            "http://u0.edu/~carol/index.html",
        ]
        rows = registry.score(ranked, cutoffs=[1, 2, 3], top_k=3)
        found = [row.found_all for row in rows]
        assert found == sorted(found)
