"""Tests for the simulated DNS stack."""

from __future__ import annotations

import pytest

from repro.errors import DNSError
from repro.web.clock import SimulatedClock
from repro.web.dns import CachingResolver, DnsServer, DnsZone


def make_zone() -> DnsZone:
    zone = DnsZone()
    zone.register("a.example", "10.0.0.1")
    zone.register("b.example", "10.0.0.2", aliases=("www.b.example",))
    return zone


def make_resolver(
    clock=None, timeout_rate=0.0, capacity=100, ttl=3600.0, servers=2
) -> CachingResolver:
    clock = clock or SimulatedClock()
    zone = make_zone()
    pool = [
        DnsServer(zone, latency=0.1, timeout_rate=timeout_rate, name=f"dns{i}")
        for i in range(servers)
    ]
    return CachingResolver(pool, clock, capacity=capacity, ttl=ttl, seed=1)


class TestZone:
    def test_lookup(self) -> None:
        zone = make_zone()
        assert zone.lookup("a.example") == ("a.example", "10.0.0.1")

    def test_alias_resolves_to_canonical(self) -> None:
        zone = make_zone()
        assert zone.lookup("www.b.example") == ("b.example", "10.0.0.2")

    def test_unknown_host(self) -> None:
        assert make_zone().lookup("nope.example") is None


class TestCachingResolver:
    def test_miss_then_hit(self) -> None:
        resolver = make_resolver()
        first = resolver.resolve("a.example")
        assert not first.cache_hit
        assert first.latency > 0
        second = resolver.resolve("a.example")
        assert second.cache_hit
        assert second.latency == 0.0
        assert resolver.hits == 1
        assert resolver.misses == 1

    def test_unknown_host_raises(self) -> None:
        resolver = make_resolver()
        with pytest.raises(DNSError):
            resolver.resolve("missing.example")

    def test_alias_lookup_caches_canonical_too(self) -> None:
        resolver = make_resolver()
        result = resolver.resolve("www.b.example")
        assert result.canonical_host == "b.example"
        follow_up = resolver.resolve("b.example")
        assert follow_up.cache_hit

    def test_ttl_expiry(self) -> None:
        clock = SimulatedClock()
        resolver = make_resolver(clock=clock, ttl=10.0)
        resolver.resolve("a.example")
        clock.advance(11.0)
        result = resolver.resolve("a.example")
        assert not result.cache_hit
        assert resolver.misses == 2

    def test_lru_eviction(self) -> None:
        resolver = make_resolver(capacity=1)
        resolver.resolve("a.example")
        resolver.resolve("b.example")  # evicts a.example
        assert len(resolver) <= 1
        result = resolver.resolve("a.example")
        assert not result.cache_hit

    def test_timeout_fallback_to_other_server(self) -> None:
        """With one always-timing-out server and one good one, resolution
        still succeeds (resend to alternative server, paper section 4.2)."""
        clock = SimulatedClock()
        zone = make_zone()
        bad = DnsServer(zone, latency=0.1, timeout_rate=1.0, name="bad")
        good = DnsServer(zone, latency=0.1, timeout_rate=0.0, name="good")
        resolver = CachingResolver([bad, good], clock, seed=3)
        result = resolver.resolve("a.example")
        assert result.ip == "10.0.0.1"

    def test_all_servers_timeout_raises(self) -> None:
        resolver = make_resolver(timeout_rate=1.0)
        with pytest.raises(DNSError):
            resolver.resolve("a.example")
        assert resolver.failures == 1

    def test_hit_rate(self) -> None:
        resolver = make_resolver()
        assert resolver.hit_rate == 0.0
        resolver.resolve("a.example")
        resolver.resolve("a.example")
        resolver.resolve("a.example")
        assert resolver.hit_rate == pytest.approx(2 / 3)

    def test_requires_at_least_one_server(self) -> None:
        with pytest.raises(ValueError):
            CachingResolver([], SimulatedClock())
