"""Tests for the vocabulary universe and Zipf sampling."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.web.vocab import TopicUniverse, Vocabulary, WordFactory


class TestWordFactory:
    def test_words_are_distinct(self) -> None:
        factory = WordFactory(np.random.default_rng(0))
        words = factory.words(500)
        assert len(set(words)) == 500

    def test_deterministic(self) -> None:
        a = WordFactory(np.random.default_rng(42)).words(20)
        b = WordFactory(np.random.default_rng(42)).words(20)
        assert a == b

    def test_word_shape(self) -> None:
        factory = WordFactory(np.random.default_rng(1))
        word = factory.word(syllables=2)
        assert len(word) == 4


class TestVocabulary:
    def test_empty_rejected(self) -> None:
        with pytest.raises(ValueError):
            Vocabulary([])

    def test_zipf_head_dominates(self) -> None:
        vocabulary = Vocabulary([f"w{i}" for i in range(100)])
        rng = np.random.default_rng(3)
        counts = Counter(vocabulary.sample(rng, 20_000))
        assert counts["w0"] > counts["w10"] > counts.get("w90", 0)

    def test_sample_zero(self) -> None:
        vocabulary = Vocabulary(["a", "b"])
        assert vocabulary.sample(np.random.default_rng(0), 0) == []

    def test_contains(self) -> None:
        vocabulary = Vocabulary(["alpha", "beta"])
        assert "alpha" in vocabulary
        assert "gamma" not in vocabulary


class TestTopicUniverse:
    @pytest.fixture(scope="class")
    def universe(self) -> TopicUniverse:
        return TopicUniverse(
            {"databases": "research", "datamining": "research", "sports": "sports"},
            seed=5,
        )

    def test_signatures_present(self, universe: TopicUniverse) -> None:
        spec = universe.spec("databases")
        assert "database" in spec.signature
        assert "query" in spec.vocabulary.words

    def test_unknown_topic_raises(self, universe: TopicUniverse) -> None:
        with pytest.raises(KeyError):
            universe.spec("nope")

    def test_specificity_controls_topic_share(self, universe: TopicUniverse) -> None:
        rng = np.random.default_rng(9)
        spec = universe.spec("databases")
        vocab = set(spec.vocabulary.words)
        high = universe.sample_terms(rng, 2000, "databases", specificity=0.7)
        low = universe.sample_terms(rng, 2000, "databases", specificity=0.1)
        high_share = sum(t in vocab for t in high) / len(high)
        low_share = sum(t in vocab for t in low) / len(low)
        assert high_share > 0.6
        assert low_share < 0.25
        assert high_share > low_share

    def test_none_topic_is_pure_background(self, universe: TopicUniverse) -> None:
        rng = np.random.default_rng(2)
        terms = universe.sample_terms(rng, 500, None, specificity=0.5)
        background = set(universe.background.words)
        assert all(t in background for t in terms)

    def test_sibling_topics_share_jargon_but_not_signatures(
        self, universe: TopicUniverse
    ) -> None:
        a = set(universe.spec("databases").vocabulary.words)
        b = set(universe.spec("datamining").vocabulary.words)
        # shared category jargon makes vocabularies overlap partially...
        overlap = a & b
        assert overlap
        assert len(overlap) < min(len(a), len(b))
        # ...but signature words stay private to their topic
        assert not set(universe.spec("databases").signature) & b
        assert not set(universe.spec("datamining").signature) & a

    def test_zero_overlap_configurable(self) -> None:
        universe = TopicUniverse(
            {"a": "research", "b": "research"}, seed=1, sibling_overlap=0.0
        )
        a = set(universe.spec("a").vocabulary.words)
        b = set(universe.spec("b").vocabulary.words)
        assert not (a & b)

    def test_invalid_overlap_rejected(self) -> None:
        with pytest.raises(ValueError):
            TopicUniverse({"a": "x"}, sibling_overlap=1.0)

    def test_invalid_specificity_rejected(self, universe: TopicUniverse) -> None:
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            universe.sample_terms(rng, 10, "databases", specificity=1.5)

    def test_category_layer_shared_between_siblings(self, universe) -> None:
        """Sibling research topics draw from the same category vocabulary."""
        rng = np.random.default_rng(4)
        category_vocab = set(universe.categories["research"].words)
        a = universe.sample_terms(rng, 3000, "databases", 0.3)
        b = universe.sample_terms(rng, 3000, "datamining", 0.3)
        a_hits = {t for t in a if t in category_vocab}
        b_hits = {t for t in b if t in category_vocab}
        assert a_hits & b_hits  # common category terms appear in both
