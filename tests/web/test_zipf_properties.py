"""Statistical properties of the Zipfian corpus generator."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.web.vocab import Vocabulary


class TestZipfShape:
    def test_rank_frequency_follows_power_law(self) -> None:
        """Sampled rank-frequency slope approximates the exponent."""
        exponent = 1.1
        vocabulary = Vocabulary(
            [f"w{i}" for i in range(300)], zipf_exponent=exponent
        )
        rng = np.random.default_rng(11)
        counts = Counter(vocabulary.sample(rng, 200_000))
        # fit log(freq) ~ -s * log(rank) over the head (ranks 1..30)
        ranks = np.arange(1, 31)
        freqs = np.array([counts.get(f"w{i}", 1) for i in range(30)])
        slope, _ = np.polyfit(np.log(ranks), np.log(freqs), 1)
        assert -slope == pytest.approx(exponent, abs=0.15)

    def test_higher_exponent_concentrates_head(self) -> None:
        rng = np.random.default_rng(3)
        flat = Vocabulary([f"w{i}" for i in range(100)], zipf_exponent=0.6)
        steep = Vocabulary([f"w{i}" for i in range(100)], zipf_exponent=1.6)
        flat_counts = Counter(flat.sample(rng, 20_000))
        steep_counts = Counter(steep.sample(rng, 20_000))
        flat_head = sum(flat_counts.get(f"w{i}", 0) for i in range(5)) / 20_000
        steep_head = sum(steep_counts.get(f"w{i}", 0) for i in range(5)) / 20_000
        assert steep_head > flat_head + 0.2

    def test_all_samples_come_from_vocabulary(self) -> None:
        vocabulary = Vocabulary(["a", "b", "c"])
        rng = np.random.default_rng(0)
        assert set(vocabulary.sample(rng, 500)) <= {"a", "b", "c"}
