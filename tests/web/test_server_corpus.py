"""Tests for the HTTP server model and the deterministic renderer."""

from __future__ import annotations

import pytest

from repro.text.tokenizer import tokenize_html
from repro.web import (
    FetchStatus,
    MimeType,
    PageRole,
    SyntheticWeb,
    WebGraphConfig,
)


@pytest.fixture(scope="module")
def web() -> SyntheticWeb:
    return SyntheticWeb.generate(
        WebGraphConfig(
            seed=21,
            target_researchers=40,
            other_researchers=10,
            universities=10,
            hubs_per_topic=3,
            background_hosts_per_category=4,
            pages_per_background_host=3,
            directory_pages_per_category=3,
            slow_host_rate=0.0,
            error_host_rate=0.0,
        )
    )


class TestRenderer:
    def test_render_is_deterministic(self, web: SyntheticWeb) -> None:
        page = web.pages[0]
        assert web.renderer.render(page) == web.renderer.render(page)

    def test_rendered_links_resolve_to_out_links(self, web) -> None:
        page = next(p for p in web.pages if p.out_links)
        html = web.renderer.render(page)
        doc = tokenize_html(html)
        target_ids = set()
        for href in doc.links:
            entry = web.url_map.get(href)
            assert entry is not None, f"dangling href {href}"
            target_ids.add(entry[0])
        assert target_ids == set(page.out_links)

    def test_topic_pages_contain_signature_terms(self, web) -> None:
        paper = next(
            p for p in web.pages
            if p.role == PageRole.PAPER and p.topic == "databases"
        )
        terms = web.renderer.body_terms(paper)
        signature = set(web.universe.spec("databases").signature)
        assert signature & set(terms)

    def test_media_pages_have_no_payload(self, web) -> None:
        media = web.pages_by_role(PageRole.MEDIA)[0]
        assert web.renderer.payload(media) is None

    def test_pdf_pages_serve_native_payload(self, web) -> None:
        """PDF pages serve the simulated native format; the analyzer's
        content handlers convert it to HTML (paper 2.2)."""
        from repro.text.handlers import default_registry

        pdf = next(p for p in web.pages if p.mime == MimeType.PDF)
        payload = web.renderer.payload(pdf)
        assert payload is not None
        assert payload.startswith("%SIM-PDF")
        converted = default_registry().convert(payload, MimeType.PDF)
        assert converted is not None
        assert converted.html.startswith("<html>")


class TestServer:
    def test_ok_fetch(self, web: SyntheticWeb) -> None:
        url = web.seed_homepages(1)[0]
        result = web.server.fetch(url)
        assert result.ok
        assert result.final_url == url
        assert result.mime == MimeType.HTML
        assert result.html
        assert result.latency > 0
        assert result.page_id == web.url_map[url][0]

    def test_unknown_host(self, web: SyntheticWeb) -> None:
        result = web.server.fetch("http://unknown.example.zz/x")
        assert result.status == FetchStatus.NOT_FOUND

    def test_missing_page_on_known_host(self, web: SyntheticWeb) -> None:
        url = web.seed_homepages(1)[0].rsplit("/", 1)[0] + "/missing.html"
        result = web.server.fetch(url)
        assert result.status == FetchStatus.NOT_FOUND
        assert result.ip is not None

    def test_locked_host_refused(self, web: SyntheticWeb) -> None:
        result = web.server.fetch("http://dblp.example.org/index.html")
        assert result.status == FetchStatus.LOCKED

    def test_alias_redirects_to_canonical(self, web: SyntheticWeb) -> None:
        page = next(p for p in web.pages if p.aliases)
        result = web.server.fetch(page.aliases[0])
        assert result.ok
        assert result.final_url == page.url
        assert result.redirect_chain == [page.aliases[0]]
        assert result.page_id == page.page_id

    def test_copy_serves_same_bytes_same_size(self, web: SyntheticWeb) -> None:
        page = next(p for p in web.pages if p.copy_urls)
        canonical = web.server.fetch(page.url)
        copy = web.server.fetch(page.copy_urls[0])
        assert copy.ok
        assert copy.redirect_chain == []  # copies do not redirect
        assert copy.size == canonical.size
        assert copy.ip == canonical.ip
        assert copy.html == canonical.html
        assert copy.final_url == page.copy_urls[0]

    def test_fetch_is_repeatable(self, web: SyntheticWeb) -> None:
        url = web.seed_homepages(1)[0]
        a = web.server.fetch(url)
        b = web.server.fetch(url)
        assert a.html == b.html
        assert a.size == b.size

    def test_timeouts_eventually_succeed_on_retry(self) -> None:
        """A host with 50% timeout rate succeeds within a few attempts."""
        web = SyntheticWeb.generate(
            WebGraphConfig(
                seed=3, target_researchers=10, other_researchers=3,
                universities=3, hubs_per_topic=1,
                background_hosts_per_category=1, pages_per_background_host=1,
                directory_pages_per_category=1,
                slow_host_rate=0.0, error_host_rate=0.0,
            )
        )
        host = next(iter(web.hosts.values()))
        host.timeout_rate = 0.5
        url = next(p.url for p in web.pages if p.host == host.name)
        statuses = {web.server.fetch(url).status for _ in range(12)}
        assert FetchStatus.OK in statuses
        assert FetchStatus.TIMEOUT in statuses

    def test_error_host_returns_http_error(self) -> None:
        web = SyntheticWeb.generate(
            WebGraphConfig(
                seed=4, target_researchers=10, other_researchers=3,
                universities=3, hubs_per_topic=1,
                background_hosts_per_category=1, pages_per_background_host=1,
                directory_pages_per_category=1,
                slow_host_rate=0.0, error_host_rate=0.0,
            )
        )
        host = next(iter(web.hosts.values()))
        host.error_rate = 1.0
        url = next(p.url for p in web.pages if p.host == host.name)
        assert web.server.fetch(url).status == FetchStatus.HTTP_ERROR
