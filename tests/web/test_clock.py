"""Tests for the simulated clock and worker pool."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.web.clock import SimulatedClock, WorkerPool


class TestSimulatedClock:
    def test_starts_at_zero(self) -> None:
        assert SimulatedClock().now == 0.0

    def test_advance(self) -> None:
        clock = SimulatedClock()
        assert clock.advance(2.5) == 2.5
        assert clock.advance(1.0) == 3.5

    def test_negative_advance_rejected(self) -> None:
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)

    def test_advance_to_never_rewinds(self) -> None:
        clock = SimulatedClock(now=10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0
        clock.advance_to(12.0)
        assert clock.now == 12.0


class TestWorkerPool:
    def test_pool_requires_positive_size(self) -> None:
        with pytest.raises(ValueError):
            WorkerPool(size=0, clock=SimulatedClock())

    def test_single_worker_serialises(self) -> None:
        clock = SimulatedClock()
        pool = WorkerPool(size=1, clock=clock)
        s1, e1 = pool.run(2.0)
        s2, e2 = pool.run(3.0)
        assert (s1, e1) == (0.0, 2.0)
        assert (s2, e2) == (2.0, 5.0)

    def test_two_workers_overlap(self) -> None:
        clock = SimulatedClock()
        pool = WorkerPool(size=2, clock=clock)
        s1, _ = pool.run(10.0)
        s2, _ = pool.run(10.0)
        # both start immediately: 2 workers
        assert s1 == 0.0
        assert s2 == 0.0
        s3, _ = pool.run(1.0)
        assert s3 == 10.0  # third task waits for a worker

    def test_negative_duration_rejected(self) -> None:
        pool = WorkerPool(size=1, clock=SimulatedClock())
        with pytest.raises(ValueError):
            pool.run(-0.5)

    def test_drain_advances_to_last_end(self) -> None:
        clock = SimulatedClock()
        pool = WorkerPool(size=3, clock=clock)
        pool.run(1.0)
        pool.run(7.0)
        pool.run(3.0)
        assert pool.drain() == 7.0
        assert clock.now == 7.0

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=40),
           st.integers(min_value=1, max_value=8))
    def test_makespan_bounds(self, durations: list[float], size: int) -> None:
        """Total makespan lies between max duration and serial sum."""
        clock = SimulatedClock()
        pool = WorkerPool(size=size, clock=clock)
        for duration in durations:
            pool.run(duration)
        makespan = pool.drain()
        assert makespan >= max(durations) - 1e-9
        assert makespan <= sum(durations) + 1e-9

    def test_worker_starts_never_before_clock(self) -> None:
        clock = SimulatedClock()
        pool = WorkerPool(size=2, clock=clock)
        clock.advance(5.0)
        start, _ = pool.run(1.0)
        assert start == 5.0
