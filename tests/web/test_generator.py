"""Structural tests for the synthetic Web generator."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.errors import ConfigError
from repro.web import (
    MimeType,
    PageRole,
    SyntheticWeb,
    WebGraphConfig,
)


@pytest.fixture(scope="module")
def web() -> SyntheticWeb:
    return SyntheticWeb.generate(
        WebGraphConfig(
            seed=13,
            target_researchers=80,
            other_researchers=25,
            universities=20,
            hubs_per_topic=4,
            background_hosts_per_category=6,
            pages_per_background_host=4,
            directory_pages_per_category=5,
        )
    )


@pytest.fixture(scope="module")
def expert_web() -> SyntheticWeb:
    return SyntheticWeb.generate_expert(seed=13)


class TestPortalWeb:
    def test_page_ids_are_positional(self, web: SyntheticWeb) -> None:
        assert all(p.page_id == i for i, p in enumerate(web.pages))

    def test_all_roles_present(self, web: SyntheticWeb) -> None:
        roles = {p.role for p in web.pages}
        expected = {
            PageRole.HOMEPAGE, PageRole.PUBLICATIONS, PageRole.PAPER,
            PageRole.CV, PageRole.WELCOME, PageRole.HUB,
            PageRole.BACKGROUND, PageRole.DIRECTORY, PageRole.REGISTRY,
            PageRole.SEARCH, PageRole.TRAP, PageRole.MEDIA,
        }
        assert expected <= roles

    def test_researcher_count(self, web: SyntheticWeb) -> None:
        counts = Counter(r.topic for r in web.researchers)
        assert counts["databases"] == 80
        assert counts["datamining"] == 25

    def test_publication_counts_zipfian(self, web: SyntheticWeb) -> None:
        registry = web.registry("databases")
        pubs = [r.publication_count for r in registry.authors]
        assert pubs[0] == web.config.max_publication_count
        assert pubs == sorted(pubs, reverse=True)
        assert pubs[-1] >= web.config.min_publication_count

    def test_out_links_are_valid_page_ids(self, web: SyntheticWeb) -> None:
        n = web.size
        for page in web.pages:
            for target in page.out_links:
                assert 0 <= target < n
                assert target != page.page_id

    def test_url_map_covers_all_pages(self, web: SyntheticWeb) -> None:
        for page in web.pages:
            assert web.url_map[page.url] == (page.page_id, "canonical")

    def test_aliases_and_copies_registered(self, web: SyntheticWeb) -> None:
        aliased = [p for p in web.pages if p.aliases]
        copied = [p for p in web.pages if p.copy_urls]
        assert aliased, "alias_rate should produce some aliases"
        assert copied, "copy_rate should produce some copies"
        for page in aliased:
            for url in page.aliases:
                assert web.url_map[url] == (page.page_id, "alias")
        for page in copied:
            for url in page.copy_urls:
                assert web.url_map[url] == (page.page_id, "copy")

    def test_locked_hosts(self, web: SyntheticWeb) -> None:
        assert web.hosts["dblp.example.org"].locked
        assert web.hosts["www.google.example.com"].locked

    def test_topical_locality_of_homepage_links(self, web: SyntheticWeb) -> None:
        """Most homepage->homepage links stay within the topic."""
        same = cross = 0
        for researcher in web.researchers:
            homepage = web.pages[researcher.homepage_page_id]
            for target_id in homepage.out_links:
                target = web.pages[target_id]
                if target.role != PageRole.HOMEPAGE:
                    continue
                if target.topic == researcher.topic:
                    same += 1
                else:
                    cross += 1
        assert same > cross * 2

    def test_welcome_only_homepages_not_linked_by_hubs(self, web) -> None:
        hidden = {
            web.researchers[a].homepage_page_id for a in web.welcome_only
        }
        for topic, hub_ids in web.hub_page_ids.items():
            for hub_id in hub_ids:
                for target in web.pages[hub_id].out_links:
                    assert target not in hidden

    def test_papers_are_topic_specific_and_often_pdf(self, web) -> None:
        papers = web.pages_by_role(PageRole.PAPER)
        assert papers
        pdf_share = sum(p.mime == MimeType.PDF for p in papers) / len(papers)
        assert 0.3 < pdf_share < 0.9
        assert all(p.specificity >= 0.4 for p in papers)
        homepages = web.pages_by_role(PageRole.HOMEPAGE)
        mean_paper = sum(p.specificity for p in papers) / len(papers)
        mean_home = sum(p.specificity for p in homepages) / len(homepages)
        assert mean_paper > mean_home

    def test_trap_chain_has_overlong_urls(self, web: SyntheticWeb) -> None:
        traps = web.pages_by_role(PageRole.TRAP)
        assert traps
        assert any(len(p.url) > 1000 for p in traps)

    def test_seed_homepages_are_top_publishers(self, web: SyntheticWeb) -> None:
        seeds = web.seed_homepages(2)
        registry = web.registry("databases")
        top2 = {r.homepage_url for r in registry.top_authors(2)}
        assert set(seeds) == top2

    def test_negative_examples_are_directory_pages(self, web) -> None:
        pages = web.negative_example_pages(10)
        assert len(pages) == 10
        assert all(p.role == PageRole.DIRECTORY for p in pages)

    def test_generation_is_deterministic(self) -> None:
        config = WebGraphConfig(
            seed=99, target_researchers=20, other_researchers=5,
            universities=5, hubs_per_topic=2,
            background_hosts_per_category=2, pages_per_background_host=2,
            directory_pages_per_category=2,
        )
        a = SyntheticWeb.generate(config)
        config2 = WebGraphConfig(
            seed=99, target_researchers=20, other_researchers=5,
            universities=5, hubs_per_topic=2,
            background_hosts_per_category=2, pages_per_background_host=2,
            directory_pages_per_category=2,
        )
        b = SyntheticWeb.generate(config2)
        assert a.size == b.size
        assert [p.url for p in a.pages] == [p.url for p in b.pages]
        assert [p.out_links for p in a.pages] == [p.out_links for p in b.pages]

    def test_invalid_config_rejected(self) -> None:
        with pytest.raises(ConfigError):
            WebGraphConfig(target_topic="nonexistent").validate()


class TestExpertWeb:
    def test_needles_exist_and_blend_topics(self, expert_web) -> None:
        assert expert_web.needles
        for pid in expert_web.needles:
            page = expert_web.pages[pid]
            assert page.role == PageRole.NEEDLE
            assert page.topic == "aries"
            assert page.secondary_topic == "opensource"

    def test_needles_reachable_from_mohan_hub(self, expert_web) -> None:
        mohan_id = expert_web.hub_page_ids["aries"][-1]
        # BFS up to depth 3 from the hub must reach at least one needle.
        frontier = {mohan_id}
        seen = set(frontier)
        for _ in range(3):
            nxt = set()
            for pid in frontier:
                nxt.update(expert_web.pages[pid].out_links)
            frontier = nxt - seen
            seen |= nxt
        assert seen & expert_web.needles

    def test_expert_web_has_aries_papers_haystack(self, expert_web) -> None:
        aries_papers = [
            p for p in expert_web.pages_by_role(PageRole.PAPER)
            if p.topic == "aries"
        ]
        assert len(aries_papers) > 10 * len(expert_web.needles) / 2
