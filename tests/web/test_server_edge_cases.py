"""Edge cases of the HTTP server model: redirect chains, limits."""

from __future__ import annotations

import pytest

from repro.web import FetchStatus, SyntheticWeb, WebGraphConfig


@pytest.fixture(scope="module")
def web() -> SyntheticWeb:
    return SyntheticWeb.generate(
        WebGraphConfig(
            seed=3, target_researchers=10, other_researchers=3,
            universities=3, hubs_per_topic=1,
            background_hosts_per_category=1, pages_per_background_host=1,
            directory_pages_per_category=1,
            slow_host_rate=0.0, error_host_rate=0.0,
        )
    )


class TestRedirectChains:
    def make_chain(self, web, length: int) -> str:
        """Register a chain of alias URLs redirecting towards a page."""
        page = next(p for p in web.pages if p.aliases or True)
        host = page.host
        # each hop is an alias entry pointing at the same page; the
        # server follows alias -> canonical, so simulate longer chains by
        # chaining through url_map entries of kind "alias" is single-hop.
        # Instead, register a synthetic loop: alias -> page whose
        # canonical URL is itself an alias entry.
        first = f"http://{host}/chain0"
        web.url_map[first] = (page.page_id, "alias")
        return first

    def test_single_alias_hop_ok(self, web) -> None:
        url = self.make_chain(web, 1)
        result = web.server.fetch(url)
        assert result.ok
        assert result.redirect_chain == [url]

    def test_redirect_loop_terminates(self, web) -> None:
        """An alias whose canonical target is itself an alias of a loop
        must hit the max_redirects guard, not hang."""
        host = next(iter(web.hosts))
        page = next(p for p in web.pages if p.host == host)
        loop_url = page.url  # canonical
        # rewrite the canonical entry into an alias pointing to itself
        original = web.url_map[loop_url]
        web.url_map[loop_url] = (page.page_id, "alias")
        try:
            result = web.server.fetch(loop_url)
            assert result.status == FetchStatus.TOO_MANY_REDIRECTS
            assert len(result.redirect_chain) > web.server.max_redirects - 2
        finally:
            web.url_map[loop_url] = original


class TestFetchAccounting:
    def test_fetch_counts_per_host(self, web) -> None:
        url = web.seed_homepages(1)[0]
        host = url.split("/")[2]
        before = web.server.fetch_counts[host]
        web.server.fetch(url)
        assert web.server.fetch_counts[host] == before + 1

    def test_latency_includes_transfer_time(self, web) -> None:
        """Bigger documents take longer (size / bandwidth term)."""
        small = min(
            (p for p in web.pages if p.mime == "text/html"),
            key=lambda p: p.size_bytes,
        )
        big = max(
            (p for p in web.pages if p.mime == "text/html"),
            key=lambda p: p.size_bytes,
        )
        # average over repeats to dampen the exponential latency noise
        def mean_latency(page, n=25):
            total = 0.0
            for _ in range(n):
                result = web.server.fetch(page.url)
                assert result.ok
                total += result.latency
            return total / n

        if big.size_bytes > small.size_bytes * 5:
            # hosts differ; compare against each host's own base latency
            small_host = web.hosts[small.host].mean_latency
            big_host = web.hosts[big.host].mean_latency
            assert (
                mean_latency(big) - big_host * 1.0
                > mean_latency(small) - small_host * 1.0 - 1.0
            )
