"""The pipeline-benchmark regression gate (pure logic, no timing).

``benchmarks/run_pipeline.py --check`` guards four quantities; these
tests drive :func:`~benchmarks.run_pipeline.check_regression` directly
with synthetic payloads so every gate (and every tolerance edge) is
exercised without running a crawl.
"""

from __future__ import annotations

from benchmarks.run_pipeline import (
    DEFAULT_MAX_CONVERT_SHARE,
    check_regression,
)


def payload(crawl_speedup=1.3, convert_speedup=8.0, pages_per_s=450.0,
            convert_share=0.28) -> dict:
    return {
        "schema": 2,
        "crawl": {
            "speedup": crawl_speedup,
            "batched_pages_per_s": pages_per_s,
        },
        "convert": {"speedup": convert_speedup},
        "stage_breakdown": {
            "stages": {"convert": {"share": convert_share}},
        },
    }


def test_identical_run_passes() -> None:
    base = payload()
    assert check_regression(payload(), base, 0.30) == []


def test_small_drift_within_tolerance_passes() -> None:
    base = payload()
    current = payload(crawl_speedup=1.0, convert_speedup=6.0,
                      pages_per_s=330.0)
    assert check_regression(current, base, 0.30) == []


def test_crawl_speedup_regression_fails() -> None:
    failures = check_regression(
        payload(crawl_speedup=0.8), payload(), 0.30
    )
    assert len(failures) == 1
    assert "micro-batched crawl" in failures[0]


def test_convert_speedup_regression_fails() -> None:
    failures = check_regression(
        payload(convert_speedup=4.0), payload(), 0.30
    )
    assert len(failures) == 1
    assert "convert substrate" in failures[0]


def test_pages_per_s_floor_fails() -> None:
    failures = check_regression(
        payload(pages_per_s=200.0), payload(), 0.30
    )
    assert len(failures) == 1
    assert "pages/s" in failures[0]


def test_convert_share_ceiling_fails() -> None:
    failures = check_regression(
        payload(convert_share=0.40), payload(), 0.30
    )
    assert len(failures) == 1
    assert "ceiling" in failures[0]
    assert DEFAULT_MAX_CONVERT_SHARE == 0.35


def test_share_gate_skipped_without_breakdown() -> None:
    current = payload(convert_share=0.90)
    del current["stage_breakdown"]
    assert check_regression(current, payload(), 0.30) == []


def test_old_schema_baseline_only_gates_what_it_has() -> None:
    """A schema-1 baseline (no convert section) still gates the crawl
    ratio and the pages/s floor -- and nothing else."""
    old_baseline = {
        "schema": 1,
        "crawl": {"speedup": 1.09, "batched_pages_per_s": 168.0},
    }
    assert check_regression(payload(), old_baseline, 0.30) == []
    failures = check_regression(
        payload(crawl_speedup=0.5, pages_per_s=100.0),
        old_baseline, 0.30,
    )
    assert len(failures) == 2


def test_committed_baseline_meets_the_acceptance_floors() -> None:
    """The checked-in results must themselves satisfy the PR's targets:
    >= 2.5x the pre-rewrite 168.0 pages/s and convert share < 0.35."""
    import json
    import pathlib

    committed = json.loads(
        (pathlib.Path(__file__).parent.parent / "benchmarks" / "results"
         / "BENCH_pipeline.json").read_text()
    )
    assert committed["crawl"]["batched_pages_per_s"] >= 2.5 * 168.0
    share = committed["stage_breakdown"]["stages"]["convert"]["share"]
    assert share < DEFAULT_MAX_CONVERT_SHARE
    assert committed["convert"]["speedup"] >= 5.0