"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_portal_defaults(self) -> None:
        args = build_parser().parse_args(["portal"])
        assert args.seed == 17
        assert args.short == 700
        assert args.long == 6000

    def test_expert_arguments(self) -> None:
        args = build_parser().parse_args(
            ["expert", "--seed", "3", "--budget", "150"]
        )
        assert args.seed == 3
        assert args.budget == 150

    def test_ablate_choices_validated(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablate", "--which", "nonsense"])

    def test_crawl_export_flags(self) -> None:
        args = build_parser().parse_args(
            ["portal", "crawl", "--export-portal", "x", "--dump-db", "y"]
        )
        assert args.export_portal == "x"
        assert args.dump_db == "y"

    def test_portal_tables_subcommand_mirrors_bare_form(self) -> None:
        bare = build_parser().parse_args(["portal", "--seed", "9"])
        grouped = build_parser().parse_args(
            ["portal", "--seed", "9", "tables"]
        )
        explicit = build_parser().parse_args(
            ["portal", "tables", "--seed", "9"]
        )
        assert bare.portal_command is None
        assert grouped.portal_command == explicit.portal_command == "tables"
        for args in (bare, grouped, explicit):
            assert (args.seed, args.short, args.long) == (9, 700, 6000)

    def test_portal_group_shares_workers_and_metrics_out(self) -> None:
        for name in ("crawl", "queryload", "evolve", "recrawl"):
            args = build_parser().parse_args(
                ["portal", name, "--workers", "4", "--metrics-out", "m.json"]
            )
            assert args.portal_command == name
            assert args.workers == 4
            assert args.metrics_out == "m.json"

    def test_portal_recrawl_arguments(self) -> None:
        args = build_parser().parse_args(
            ["portal", "recrawl", "--cycles", "2",
             "--recrawl-budget", "30", "--seconds", "900"]
        )
        assert args.cycles == 2
        assert args.recrawl_budget == 30
        assert args.seconds == 900.0
        assert args.evolution_seed is None

    def test_legacy_aliases_are_gone(self) -> None:
        # the one-release top-level crawl/queryload aliases were
        # removed; only the portal group forms parse now
        for legacy in (["crawl"], ["queryload"]):
            with pytest.raises(SystemExit):
                build_parser().parse_args(legacy)


class TestCrawlCommand:
    def test_crawl_prints_and_exports(self, tmp_path, capsys) -> None:
        portal_dir = tmp_path / "portal"
        db_dir = tmp_path / "db"
        code = main([
            "portal", "crawl", "--seed", "7", "--budget", "120",
            "--export-portal", str(portal_dir),
            "--dump-db", str(db_dir),
            "--top", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "visited_urls" in out
        assert "top 3 results" in out
        assert (portal_dir / "index.html").exists()
        assert (db_dir / "manifest.json").exists()

    def test_expert_command_runs(self, capsys) -> None:
        code = main(["expert", "--budget", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "Figure 5" in out

    def test_legacy_crawl_is_a_usage_error(self, capsys) -> None:
        assert main(["crawl", "--budget", "60", "--top", "2"]) == 2
        assert main(["queryload", "--budget", "60"]) == 2

    def test_portal_crawl_runs_without_notice(self, capsys) -> None:
        code = main(["portal", "crawl", "--budget", "60", "--top", "2"])
        assert code == 0
        captured = capsys.readouterr()
        assert "deprecated" not in captured.err
        assert "visited_urls" in captured.out


class TestPortalLifecycleCommands:
    def test_portal_recrawl_runs_cycles(self, tmp_path, capsys) -> None:
        metrics = tmp_path / "metrics.json"
        code = main([
            "portal", "recrawl", "--budget", "120",
            "--cycles", "1", "--seconds", "1200",
            "--recrawl-budget", "20",
            "--metrics-out", str(metrics),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cycle 1:" in out
        assert "serving epoch: epoch#" in out
        assert "freshness_stale" in out
        assert metrics.exists()


class TestExitCodeContract:
    """0 success / 1 run failure / 2 usage -- shared with repro.lint."""

    def test_usage_error_returns_two(self, capsys) -> None:
        assert main([]) == 2
        assert main(["no-such-command"]) == 2
        assert main(["portal", "crawl", "--budget", "not-a-number"]) == 2

    def test_help_returns_zero(self, capsys) -> None:
        assert main(["--help"]) == 0

    def test_repro_error_returns_one(self, capsys) -> None:
        # an unknown topic surfaces as a ReproError, not a traceback
        code = main(
            ["portal", "crawl", "--budget", "5", "--topic", "no-such-topic"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_lint_cli_shares_the_contract(self, tmp_path, capsys) -> None:
        from repro.lint.cli import main as lint_main

        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        assert lint_main([str(clean)]) == 0
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nNOW = time.time()\n")
        assert lint_main([str(bad), "--no-baseline"]) == 1
        assert lint_main(["--format", "nope"]) == 2
        capsys.readouterr()
