"""Tests for Naive Bayes and Rocchio classifiers."""

from __future__ import annotations

import pytest

from repro.errors import TrainingError
from repro.ml.naive_bayes import NaiveBayesClassifier
from repro.ml.rocchio import RocchioClassifier
from repro.text.vectorizer import SparseVector

from tests.ml.conftest import make_two_class_data


@pytest.fixture(params=[NaiveBayesClassifier, RocchioClassifier])
def classifier_class(request):
    return request.param


def test_fits_and_separates(classifier_class) -> None:
    vectors, labels = make_two_class_data(seed=1)
    model = classifier_class().fit(vectors, labels)
    correct = sum(model.predict(v) == l for v, l in zip(vectors, labels))
    assert correct / len(labels) >= 0.9


def test_generalises(classifier_class) -> None:
    vectors, labels = make_two_class_data(seed=1)
    test_vectors, test_labels = make_two_class_data(seed=2)
    model = classifier_class().fit(vectors, labels)
    correct = sum(
        model.predict(v) == l for v, l in zip(test_vectors, test_labels)
    )
    assert correct / len(test_labels) >= 0.8


def test_decision_sign_consistency(classifier_class) -> None:
    vectors, labels = make_two_class_data(seed=3)
    model = classifier_class().fit(vectors, labels)
    for v in vectors[:8]:
        assert (model.decision(v) > 0) == (model.predict(v) == 1)


def test_untrained_raises(classifier_class) -> None:
    with pytest.raises(TrainingError):
        classifier_class().decision(SparseVector({"a": 1.0}))


def test_single_class_rejected(classifier_class) -> None:
    v = SparseVector({"a": 1.0})
    with pytest.raises(TrainingError):
        classifier_class().fit([v, v], [1, 1])


class TestNaiveBayesSpecifics:
    def test_unseen_features_uninformative(self) -> None:
        vectors, labels = make_two_class_data(seed=4)
        model = NaiveBayesClassifier().fit(vectors, labels)
        empty = SparseVector({})
        unseen = SparseVector({"zzz-new": 3.0})
        assert model.decision(unseen) == pytest.approx(model.decision(empty))

    def test_smoothing_must_be_positive(self) -> None:
        with pytest.raises(TrainingError):
            NaiveBayesClassifier(smoothing=0.0)

    def test_prior_reflects_imbalance(self) -> None:
        pos = [SparseVector({"x": 1.0}) for _ in range(30)]
        neg = [SparseVector({"y": 1.0}) for _ in range(3)]
        model = NaiveBayesClassifier().fit(pos + neg, [1] * 30 + [-1] * 3)
        # with no features, the prior favours the majority class
        assert model.decision(SparseVector({})) > 0


class TestRocchioSpecifics:
    def test_beta_zero_ignores_negative_centroid(self) -> None:
        vectors, labels = make_two_class_data(seed=5)
        model = RocchioClassifier(beta=0.0).fit(vectors, labels)
        negish = SparseVector({"neg0": 2.0, "neg1": 2.0})
        # without the negative centroid, a pure-negative doc scores ~0
        assert model.decision(negish) == pytest.approx(0.0, abs=1e-6)

    def test_negative_beta_rejected(self) -> None:
        with pytest.raises(TrainingError):
            RocchioClassifier(beta=-1.0)
