"""Tests for the from-scratch linear SVM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.svm import LinearSVM
from repro.text.vectorizer import SparseVector

from tests.ml.conftest import make_two_class_data


def test_separable_problem_is_separated() -> None:
    vectors = [
        SparseVector({"a": 1.0}),
        SparseVector({"a": 2.0}),
        SparseVector({"b": 1.0}),
        SparseVector({"b": 2.0}),
    ]
    labels = [1, 1, -1, -1]
    svm = LinearSVM(C=10.0).fit(vectors, labels)
    for vector, label in zip(vectors, labels):
        assert svm.predict(vector) == label


def test_training_accuracy_on_synthetic_topics(two_class_data) -> None:
    vectors, labels = two_class_data
    svm = LinearSVM().fit(vectors, labels)
    correct = sum(
        svm.predict(v) == label for v, label in zip(vectors, labels)
    )
    assert correct / len(labels) >= 0.95


def test_generalisation_to_held_out(two_class_data, held_out_data) -> None:
    vectors, labels = two_class_data
    test_vectors, test_labels = held_out_data
    svm = LinearSVM().fit(vectors, labels)
    correct = sum(
        svm.predict(v) == label
        for v, label in zip(test_vectors, test_labels)
    )
    assert correct / len(test_labels) >= 0.85


def test_decision_sign_matches_predict(two_class_data) -> None:
    vectors, labels = two_class_data
    svm = LinearSVM().fit(vectors, labels)
    for vector in vectors[:10]:
        assert (svm.decision(vector) > 0) == (svm.predict(vector) == 1)


def test_distance_is_scaled_decision(two_class_data) -> None:
    vectors, labels = two_class_data
    svm = LinearSVM().fit(vectors, labels)
    v = vectors[0]
    assert svm.distance(v) == pytest.approx(
        svm.decision(v) * svm.margin, rel=1e-9
    )


def test_confident_examples_are_farther(two_class_data) -> None:
    """A strongly positive document lies farther from the hyperplane."""
    vectors, labels = two_class_data
    svm = LinearSVM().fit(vectors, labels)
    weak = SparseVector({"pos0": 0.5})
    strong = SparseVector({f"pos{i}": 3.0 for i in range(10)})
    assert svm.distance(strong) > svm.distance(weak) > 0


def test_dual_feasibility(two_class_data) -> None:
    vectors, labels = two_class_data
    svm = LinearSVM(C=1.0).fit(vectors, labels)
    assert svm.alphas_ is not None
    assert np.all(svm.alphas_ >= -1e-12)
    assert np.all(svm.alphas_ <= svm.C + 1e-12)


def test_slacks_nonnegative_and_zero_for_big_margin(two_class_data) -> None:
    vectors, labels = two_class_data
    svm = LinearSVM(C=10.0).fit(vectors, labels)
    assert np.all(svm.slacks_ >= 0.0)
    # on this near-separable data most slacks vanish at high C
    assert (svm.slacks_ < 1e-6).mean() > 0.5


def test_unseen_features_ignored(two_class_data) -> None:
    vectors, labels = two_class_data
    svm = LinearSVM().fit(vectors, labels)
    v = SparseVector({"never-seen": 5.0})
    baseline = SparseVector({})
    assert svm.decision(v) == pytest.approx(svm.decision(baseline))


def test_training_is_deterministic(two_class_data) -> None:
    vectors, labels = two_class_data
    a = LinearSVM(seed=5).fit(vectors, labels)
    b = LinearSVM(seed=5).fit(vectors, labels)
    probe = vectors[3]
    assert a.decision(probe) == pytest.approx(b.decision(probe))


def test_rejects_bad_inputs() -> None:
    v = SparseVector({"a": 1.0})
    with pytest.raises(TrainingError):
        LinearSVM().fit([], [])
    with pytest.raises(TrainingError):
        LinearSVM().fit([v], [1])  # single class
    with pytest.raises(TrainingError):
        LinearSVM().fit([v, v], [1, 2])  # invalid label
    with pytest.raises(TrainingError):
        LinearSVM().fit([v], [1, -1])  # length mismatch
    with pytest.raises(TrainingError):
        LinearSVM(C=0.0)


def test_decision_before_fit_raises() -> None:
    with pytest.raises(TrainingError):
        LinearSVM().decision(SparseVector({"a": 1.0}))


def test_weight_of_named_feature(two_class_data) -> None:
    vectors, labels = two_class_data
    svm = LinearSVM().fit(vectors, labels)
    assert svm.weight_of("pos0") > 0
    assert svm.weight_of("neg0") < 0
    assert svm.weight_of("never-seen") == 0.0


def test_hard_problem_still_converges() -> None:
    """Label noise must not break training (soft margin absorbs it)."""
    vectors, labels = make_two_class_data(overlap=0.5, seed=2)
    rng = np.random.default_rng(0)
    noisy = [
        -label if rng.random() < 0.1 else label for label in labels
    ]
    svm = LinearSVM(C=0.5).fit(vectors, noisy)
    correct = sum(svm.predict(v) == l for v, l in zip(vectors, labels))
    assert correct / len(labels) > 0.7
