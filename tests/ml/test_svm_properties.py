"""Property tests for SVM optimality conditions (KKT) and invariances."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.svm import LinearSVM
from repro.text.vectorizer import SparseVector


def dataset_from(seeds: list[int]) -> tuple[list[SparseVector], list[int]]:
    """Small random two-class sets with guaranteed class presence."""
    rng = np.random.default_rng(sum(seeds) % (2**32))
    vectors = []
    labels = []
    for i, seed in enumerate(seeds):
        label = 1 if i % 2 == 0 else -1
        base = "p" if label == 1 else "n"
        weights = {
            f"{base}{int(rng.integers(6))}": float(rng.uniform(0.5, 3))
            for _ in range(4)
        }
        weights[f"shared{seed % 4}"] = float(rng.uniform(0.1, 2))
        vectors.append(SparseVector(weights))
        labels.append(label)
    return vectors, labels


seed_lists = st.lists(st.integers(0, 100), min_size=4, max_size=24).filter(
    lambda s: len(s) >= 4
)


@given(seed_lists)
@settings(max_examples=30, deadline=None)
def test_kkt_complementary_slackness(seeds) -> None:
    """At the (approximate) optimum: alpha in [0, C]; clearly violated
    margins force alpha to the C bound.

    Tolerances are practical: duplicate training examples create flat
    directions in the dual where coordinate descent can stop with the
    total alpha mass correct but individual coordinates slightly off.
    """
    vectors, labels = dataset_from(seeds)
    C = 1.0
    svm = LinearSVM(C=C, max_epochs=1000, tol=1e-10).fit(vectors, labels)
    alphas = svm.alphas_
    slacks = svm.slacks_
    assert np.all(alphas >= -1e-9)
    assert np.all(alphas <= C + 1e-9)
    # aggregate complementary slackness: examples with a clear margin
    # violation carry (collectively) near-maximal dual mass
    violated = [
        alpha for alpha, slack in zip(alphas, slacks) if slack > 1e-2
    ]
    if violated:
        assert min(violated) >= C * 0.5
        assert np.mean(violated) >= C * 0.9


@given(seed_lists, st.floats(0.5, 5.0))
@settings(max_examples=20, deadline=None)
def test_decision_invariant_to_input_scaling(seeds, factor) -> None:
    """With normalisation on, scaling a document leaves decisions fixed."""
    vectors, labels = dataset_from(seeds)
    svm = LinearSVM(C=1.0).fit(vectors, labels)
    probe = vectors[0]
    scaled = SparseVector({f: w * factor for f, w in probe})
    assert svm.decision(scaled) == pytest.approx(
        svm.decision(probe), rel=1e-9, abs=1e-12
    )


@given(seed_lists)
@settings(max_examples=20, deadline=None)
def test_label_flip_symmetry(seeds) -> None:
    """Training with flipped labels negates the decision function."""
    vectors, labels = dataset_from(seeds)
    svm_a = LinearSVM(C=1.0, seed=0).fit(vectors, labels)
    svm_b = LinearSVM(C=1.0, seed=0).fit(
        vectors, [-label for label in labels]
    )
    for probe in vectors[:5]:
        assert svm_a.decision(probe) == pytest.approx(
            -svm_b.decision(probe), rel=1e-5, abs=1e-7
        )
