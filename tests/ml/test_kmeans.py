"""Tests for K-means clustering and entropy-based model selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.kmeans import KMeans, choose_cluster_count, cluster_impurity
from repro.text.vectorizer import SparseVector


def blob(vocab: list[str], seed: int, n: int = 20) -> list[SparseVector]:
    rng = np.random.default_rng(seed)
    docs = []
    for _ in range(n):
        weights = {}
        for _ in range(8):
            term = vocab[int(rng.integers(len(vocab)))]
            weights[term] = weights.get(term, 0.0) + 1.0
        docs.append(SparseVector(weights))
    return docs


@pytest.fixture(scope="module")
def three_blobs() -> list[SparseVector]:
    a = blob([f"a{i}" for i in range(10)], seed=1)
    b = blob([f"b{i}" for i in range(10)], seed=2)
    c = blob([f"c{i}" for i in range(10)], seed=3)
    return a + b + c


class TestKMeans:
    def test_recovers_blob_structure(self, three_blobs) -> None:
        model = KMeans(k=3, seed=0).fit(three_blobs)
        # documents of one blob should mostly share a cluster
        for start in (0, 20, 40):
            cluster_ids = model.assignments[start : start + 20]
            dominant = np.bincount(cluster_ids).max()
            assert dominant >= 16

    def test_every_document_assigned(self, three_blobs) -> None:
        model = KMeans(k=3, seed=0).fit(three_blobs)
        assert len(model.assignments) == len(three_blobs)
        assert sum(model.sizes()) == len(three_blobs)

    def test_members_match_assignments(self, three_blobs) -> None:
        model = KMeans(k=3, seed=0).fit(three_blobs)
        for cluster in range(3):
            for i in model.members(cluster):
                assert model.assignments[i] == cluster

    def test_labels_use_characteristic_terms(self, three_blobs) -> None:
        model = KMeans(k=3, seed=0).fit(three_blobs)
        labels = [model.label(c) for c in range(3)]
        prefixes = {label[0] for label in labels}
        # the three blobs use a*/b*/c* vocabularies -> distinct prefixes
        assert len(prefixes) == 3

    def test_k_larger_than_corpus_rejected(self) -> None:
        with pytest.raises(TrainingError):
            KMeans(k=5).fit([SparseVector({"a": 1.0})] * 3)

    def test_invalid_k_rejected(self) -> None:
        with pytest.raises(TrainingError):
            KMeans(k=0)

    def test_deterministic(self, three_blobs) -> None:
        a = KMeans(k=3, seed=7).fit(three_blobs)
        b = KMeans(k=3, seed=7).fit(three_blobs)
        assert np.array_equal(a.assignments, b.assignments)


class TestImpurity:
    def test_pure_clusters_have_lower_impurity(self, three_blobs) -> None:
        good = KMeans(k=3, seed=0).fit(three_blobs)
        collapsed = KMeans(k=1, seed=0).fit(three_blobs)
        assert good.impurity < collapsed.impurity

    def test_impurity_bounds(self, three_blobs) -> None:
        model = KMeans(k=3, seed=0).fit(three_blobs)
        assert 0.0 <= model.impurity <= 1.0

    def test_empty_matrix(self) -> None:
        assert cluster_impurity(np.zeros((0, 5)), np.array([]), 1) == 0.0


class TestModelSelection:
    def test_chooses_a_feasible_k(self, three_blobs) -> None:
        model = choose_cluster_count(three_blobs, k_range=(2, 3, 4), seed=0)
        assert model.k in (2, 3, 4)

    def test_selected_model_minimises_impurity(self, three_blobs) -> None:
        chosen = choose_cluster_count(three_blobs, k_range=(2, 3, 4), seed=0)
        impurities = [
            KMeans(k, seed=0).fit(three_blobs).impurity for k in (2, 3, 4)
        ]
        assert chosen.impurity == pytest.approx(min(impurities))

    def test_empty_range_rejected(self, three_blobs) -> None:
        with pytest.raises(TrainingError):
            choose_cluster_count(three_blobs, k_range=(100,))
