"""Tests for the meta classifier (paper equation 2)."""

from __future__ import annotations

import pytest

from repro.errors import TrainingError
from repro.ml.common import BinaryClassifier
from repro.ml.meta import MetaClassifier
from repro.ml.naive_bayes import NaiveBayesClassifier
from repro.ml.rocchio import RocchioClassifier
from repro.ml.svm import LinearSVM
from repro.text.vectorizer import SparseVector

from tests.ml.conftest import make_two_class_data


class FixedClassifier(BinaryClassifier):
    """Always answers with a fixed vote (for decision-rule tests)."""

    def __init__(self, vote: int) -> None:
        self.vote = vote

    def fit(self, vectors, labels):
        return self

    def decision(self, vector) -> float:
        return float(self.vote)


V = SparseVector({"x": 1.0})


class TestDecisionRules:
    def test_unanimous_positive(self) -> None:
        meta = MetaClassifier.unanimous([FixedClassifier(1)] * 3)
        assert meta.predict(V) == 1

    def test_unanimous_abstains_on_disagreement(self) -> None:
        meta = MetaClassifier.unanimous(
            [FixedClassifier(1), FixedClassifier(1), FixedClassifier(-1)]
        )
        verdict = meta.classify(V)
        assert verdict.decision == 0
        assert verdict.abstained

    def test_unanimous_negative(self) -> None:
        meta = MetaClassifier.unanimous([FixedClassifier(-1)] * 4)
        assert meta.predict(V) == -1

    def test_majority(self) -> None:
        meta = MetaClassifier.majority(
            [FixedClassifier(1), FixedClassifier(1), FixedClassifier(-1)]
        )
        assert meta.predict(V) == 1

    def test_majority_tie_abstains(self) -> None:
        meta = MetaClassifier.majority(
            [FixedClassifier(1), FixedClassifier(-1)]
        )
        assert meta.predict(V) == 0

    def test_weighted_overrules_count(self) -> None:
        """One high-precision classifier outweighs two weak dissenters."""
        meta = MetaClassifier.weighted(
            [FixedClassifier(1), FixedClassifier(-1), FixedClassifier(-1)],
            precisions=[0.95, 0.3, 0.3],
        )
        assert meta.predict(V) == 1

    def test_score_reported(self) -> None:
        meta = MetaClassifier.majority([FixedClassifier(1)] * 3)
        assert meta.classify(V).score == pytest.approx(3.0)
        assert meta.decision(V) == pytest.approx(3.0)

    def test_votes_recorded(self) -> None:
        meta = MetaClassifier.majority(
            [FixedClassifier(1), FixedClassifier(-1)]
        )
        assert meta.classify(V).votes == (1, -1)


class TestValidation:
    def test_empty_members_rejected(self) -> None:
        with pytest.raises(TrainingError):
            MetaClassifier([])

    def test_weight_count_mismatch(self) -> None:
        with pytest.raises(TrainingError):
            MetaClassifier([FixedClassifier(1)], weights=[1.0, 2.0])

    def test_threshold_order_enforced(self) -> None:
        with pytest.raises(TrainingError):
            MetaClassifier([FixedClassifier(1)], t1=-1.0, t2=1.0)


class TestEndToEnd:
    def test_unanimous_meta_is_at_least_as_precise_as_members(self) -> None:
        """Section 3.5: unanimous decisions trade recall for precision."""
        train_vectors, train_labels = make_two_class_data(
            overlap=0.55, seed=10, n_per_class=60
        )
        test_vectors, test_labels = make_two_class_data(
            overlap=0.55, seed=11, n_per_class=120
        )
        members = [
            LinearSVM(C=0.3, seed=1).fit(train_vectors, train_labels),
            NaiveBayesClassifier().fit(train_vectors, train_labels),
            RocchioClassifier().fit(train_vectors, train_labels),
        ]
        meta = MetaClassifier.unanimous(members)

        def precision(predict) -> float:
            tp = fp = 0
            for v, label in zip(test_vectors, test_labels):
                if predict(v) == 1:
                    if label == 1:
                        tp += 1
                    else:
                        fp += 1
            return tp / (tp + fp) if tp + fp else 1.0

        member_precision = max(precision(m.predict) for m in members)
        meta_precision = precision(meta.predict)
        assert meta_precision >= member_precision - 0.05
