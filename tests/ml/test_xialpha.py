"""Tests for the xi-alpha leave-one-out estimator."""

from __future__ import annotations

import pytest

from repro.errors import TrainingError
from repro.ml.svm import LinearSVM
from repro.ml.xialpha import xi_alpha_estimate

from tests.ml.conftest import make_two_class_data


def fit(overlap: float, seed: int = 0, C: float = 1.0):
    vectors, labels = make_two_class_data(overlap=overlap, seed=seed)
    svm = LinearSVM(C=C).fit(vectors, labels)
    return svm, vectors, labels


class TestXiAlpha:
    def test_estimates_bounded(self) -> None:
        svm, _, labels = fit(overlap=0.2)
        estimate = xi_alpha_estimate(svm, labels)
        assert 0.0 <= estimate.error <= 1.0
        assert 0.0 <= estimate.recall <= 1.0
        assert 0.0 <= estimate.precision <= 1.0

    def test_easy_problem_scores_high(self) -> None:
        svm, _, labels = fit(overlap=0.05, C=10.0)
        estimate = xi_alpha_estimate(svm, labels)
        assert estimate.error < 0.35
        assert estimate.precision > 0.6

    def test_harder_problem_scores_lower(self) -> None:
        easy_svm, _, easy_labels = fit(overlap=0.05, C=10.0)
        hard_svm, _, hard_labels = fit(overlap=0.7, C=10.0)
        easy = xi_alpha_estimate(easy_svm, easy_labels)
        hard = xi_alpha_estimate(hard_svm, hard_labels)
        assert hard.error >= easy.error

    def test_pessimism_relative_to_training_accuracy(self) -> None:
        """xi-alpha is an *upper* bound on LOO error, so the estimated
        error should not be lower than the training error."""
        svm, vectors, labels = fit(overlap=0.3)
        estimate = xi_alpha_estimate(svm, labels)
        train_errors = sum(
            svm.predict(v) != label for v, label in zip(vectors, labels)
        )
        assert estimate.error >= train_errors / len(labels) - 1e-9

    def test_flag_counts_consistent(self) -> None:
        svm, _, labels = fit(overlap=0.4)
        estimate = xi_alpha_estimate(svm, labels)
        n = len(labels)
        flagged = estimate.flagged_positive + estimate.flagged_negative
        assert estimate.error == pytest.approx(flagged / n)

    def test_requires_labels(self) -> None:
        svm, _, labels = fit(overlap=0.2)
        with pytest.raises(TrainingError):
            xi_alpha_estimate(svm)

    def test_label_length_mismatch(self) -> None:
        svm, _, labels = fit(overlap=0.2)
        with pytest.raises(TrainingError):
            xi_alpha_estimate(svm, labels[:-1])

    def test_untrained_svm_rejected(self) -> None:
        with pytest.raises(TrainingError):
            xi_alpha_estimate(LinearSVM(), [1, -1])
