"""Shared fixtures: synthetic two-class document sets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.text.vectorizer import SparseVector


def make_two_class_data(
    n_per_class: int = 40,
    n_features: int = 30,
    overlap: float = 0.2,
    seed: int = 0,
) -> tuple[list[SparseVector], list[int]]:
    """Two topics with mostly disjoint vocabularies plus shared noise."""
    rng = np.random.default_rng(seed)
    pos_vocab = [f"pos{i}" for i in range(n_features)]
    neg_vocab = [f"neg{i}" for i in range(n_features)]
    shared = [f"bg{i}" for i in range(n_features)]
    vectors: list[SparseVector] = []
    labels: list[int] = []
    for label, vocab in ((1, pos_vocab), (-1, neg_vocab)):
        for _ in range(n_per_class):
            weights: dict[str, float] = {}
            for _ in range(12):
                if rng.random() < overlap:
                    term = shared[int(rng.integers(n_features))]
                else:
                    term = vocab[int(rng.integers(n_features))]
                weights[term] = weights.get(term, 0.0) + 1.0
            vectors.append(SparseVector(weights))
            labels.append(label)
    return vectors, labels


@pytest.fixture(scope="module")
def two_class_data() -> tuple[list[SparseVector], list[int]]:
    return make_two_class_data()


@pytest.fixture(scope="module")
def held_out_data() -> tuple[list[SparseVector], list[int]]:
    return make_two_class_data(seed=99)
