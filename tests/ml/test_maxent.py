"""Tests for the Maximum Entropy (logistic regression) classifier."""

from __future__ import annotations

import pytest

from repro.errors import TrainingError
from repro.ml.maxent import MaxEntClassifier
from repro.text.vectorizer import SparseVector

from tests.ml.conftest import make_two_class_data


class TestMaxEnt:
    def test_separates_synthetic_topics(self) -> None:
        vectors, labels = make_two_class_data(seed=1)
        model = MaxEntClassifier().fit(vectors, labels)
        correct = sum(
            model.predict(v) == label for v, label in zip(vectors, labels)
        )
        assert correct / len(labels) >= 0.95

    def test_generalises(self) -> None:
        vectors, labels = make_two_class_data(seed=1)
        test_vectors, test_labels = make_two_class_data(seed=2)
        model = MaxEntClassifier().fit(vectors, labels)
        correct = sum(
            model.predict(v) == label
            for v, label in zip(test_vectors, test_labels)
        )
        assert correct / len(test_labels) >= 0.85

    def test_probability_is_calibrated_sigmoid(self) -> None:
        vectors, labels = make_two_class_data(seed=3)
        model = MaxEntClassifier().fit(vectors, labels)
        strong_pos = SparseVector({f"pos{i}": 3.0 for i in range(8)})
        strong_neg = SparseVector({f"neg{i}": 3.0 for i in range(8)})
        assert model.probability(strong_pos) > 0.8
        assert model.probability(strong_neg) < 0.2
        for v in vectors[:5]:
            p = model.probability(v)
            assert 0.0 <= p <= 1.0
            assert (p > 0.5) == (model.predict(v) == 1)

    def test_regularization_shrinks_weights(self) -> None:
        vectors, labels = make_two_class_data(seed=4)
        loose = MaxEntClassifier(regularization=0.01).fit(vectors, labels)
        tight = MaxEntClassifier(regularization=50.0).fit(vectors, labels)
        import numpy as np

        assert np.linalg.norm(tight._weights) < np.linalg.norm(loose._weights)

    def test_decision_before_fit_raises(self) -> None:
        with pytest.raises(TrainingError):
            MaxEntClassifier().decision(SparseVector({"a": 1.0}))

    def test_invalid_regularization(self) -> None:
        with pytest.raises(TrainingError):
            MaxEntClassifier(regularization=-1.0)

    def test_single_class_rejected(self) -> None:
        v = SparseVector({"a": 1.0})
        with pytest.raises(TrainingError):
            MaxEntClassifier().fit([v, v], [1, 1])

    def test_unseen_features_ignored(self) -> None:
        vectors, labels = make_two_class_data(seed=5)
        model = MaxEntClassifier().fit(vectors, labels)
        empty = SparseVector({})
        unseen = SparseVector({"zzz": 4.0})
        assert model.decision(unseen) == pytest.approx(model.decision(empty))

    def test_deterministic(self) -> None:
        vectors, labels = make_two_class_data(seed=6)
        a = MaxEntClassifier().fit(vectors, labels)
        b = MaxEntClassifier().fit(vectors, labels)
        probe = vectors[7]
        assert a.decision(probe) == pytest.approx(b.decision(probe))
