"""Metrics registry: determinism, histogram bucket edges, disabled mode."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry
from repro.obs.registry import DEFAULT_BUCKETS, Histogram, format_float


class TestCountersAndGauges:
    def test_counter_accumulates_per_label_set(self) -> None:
        registry = MetricsRegistry()
        family = registry.counter("pipeline_stage_batches_total")
        family.labels(stage="fetch").inc()
        family.labels(stage="fetch").inc(2)
        family.labels(stage="classify").inc()
        assert registry.value(
            "pipeline_stage_batches_total", stage="fetch"
        ) == 3.0
        assert registry.value(
            "pipeline_stage_batches_total", stage="classify"
        ) == 1.0
        assert registry.value(
            "pipeline_stage_batches_total", stage="persist"
        ) == 0.0

    def test_counter_rejects_negative_increment(self) -> None:
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c_total").inc(-1)

    def test_gauge_sets_and_moves_both_ways(self) -> None:
        registry = MetricsRegistry()
        gauge = registry.gauge("queue_depth")
        gauge.set(5)
        gauge.inc(-2)
        assert registry.value("queue_depth") == 3.0

    def test_kind_conflict_is_rejected(self) -> None:
        registry = MetricsRegistry()
        # the kind-conflict probe must reuse one name for both kinds,
        # which necessarily breaks the suffix convention for one of them
        registry.counter("metric_one")  # bingolint: disable=metric-name
        with pytest.raises(ValueError):
            registry.gauge("metric_one")

    def test_names_must_be_snake_case(self) -> None:
        registry = MetricsRegistry()
        for bad in ("CamelCase", "has-dash", "9leading", "sp ace"):
            with pytest.raises(ValueError):
                registry.counter(bad)


class TestHistogramBucketEdges:
    def test_value_on_boundary_lands_in_that_bucket(self) -> None:
        # prometheus `le` convention: v <= bound
        histogram = Histogram((1.0, 2.0, 4.0))
        for value in (1.0, 2.0, 4.0, 0.5, 3.0, 9.0):
            histogram.observe(value)
        cumulative = dict(histogram.cumulative())
        assert cumulative["1"] == 2  # 0.5, 1.0
        assert cumulative["2"] == 3  # + 2.0
        assert cumulative["4"] == 5  # + 3.0, 4.0
        assert cumulative["+Inf"] == 6  # + 9.0
        assert histogram.count == 6
        assert histogram.sum == pytest.approx(19.5)

    def test_cumulative_counts_are_monotone(self) -> None:
        histogram = Histogram(DEFAULT_BUCKETS)
        for value in range(100):
            histogram.observe(float(value))
        counts = [count for _le, count in histogram.cumulative()]
        assert counts == sorted(counts)
        assert counts[-1] == 100

    def test_boundaries_must_increase(self) -> None:
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(())


class TestDeterminism:
    def run_workload(self) -> dict:
        """The same fixed-clock workload, reproduced exactly."""
        tick = iter(range(1000))
        registry = MetricsRegistry(clock=lambda: float(next(tick)))
        for stage in ("admit", "fetch", "classify") * 5:
            registry.counter("stage_batches_total").labels(stage=stage).inc()
        histogram = registry.histogram("batch_docs")
        for size in (1, 3, 8, 8, 64, 200):
            histogram.observe(size)
        registry.gauge("frontier_depth").set(42)
        registry.register_source(
            "robust", lambda: {"hosts_tracked": 7.0, "breaker_trips": 2.0}
        )
        return registry.snapshot()

    def test_identical_runs_snapshot_identically(self) -> None:
        assert self.run_workload() == self.run_workload()

    def test_snapshot_timestamp_comes_from_the_clock(self) -> None:
        registry = MetricsRegistry(clock=lambda: 123.5)
        assert registry.snapshot()["at"] == 123.5

    def test_source_keys_are_validated_snake_case(self) -> None:
        registry = MetricsRegistry()
        registry.register_source("bad", lambda: {"Not-Snake": 1.0})
        with pytest.raises(ValueError):
            registry.snapshot()


class TestDisabledRegistry:
    def test_every_operation_is_a_noop(self) -> None:
        registry = MetricsRegistry(enabled=False)
        registry.counter("c_total").labels(stage="fetch").inc()
        registry.gauge("g").set(9)
        registry.histogram("h").observe(3)
        registry.register_source("src", lambda: {"k": 1.0})
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}
        assert snapshot["sources"] == {}
        assert registry.value("c_total", stage="fetch") == 0.0


class TestFormatFloat:
    def test_integers_render_without_decimal_point(self) -> None:
        assert format_float(3.0) == "3"
        assert format_float(0.0) == "0"

    def test_fractions_round_trip(self) -> None:
        assert float(format_float(2.5)) == 2.5
