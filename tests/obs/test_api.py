"""The typed hook API: StageEvent delivery and hook-exception isolation."""

from __future__ import annotations

import pytest

from repro.core.crawler import SOFT, FocusedCrawler, PhaseSettings
from repro.obs.api import StageEvent
from repro.pipeline import STAGE_NAMES
from repro.web import SyntheticWeb

from tests.conftest import small_web_config
from tests.core.conftest import fast_engine_config
from tests.core.test_crawler import make_trained_classifier


@pytest.fixture(scope="module")
def web():
    return SyntheticWeb.generate(small_web_config())


def build_crawler(web, **overrides) -> FocusedCrawler:
    config = fast_engine_config(max_retries=2, **overrides)
    classifier = make_trained_classifier(web, config)
    return FocusedCrawler(web, classifier, config)


def run_phase(crawler, budget: int = 20):
    crawler.seed(
        crawler.web.seed_homepages(3), topic="ROOT/databases", priority=10.0
    )
    return crawler.crawl(
        PhaseSettings(name="t", focus=SOFT, fetch_budget=budget)
    )


class TestTypedHookApi:
    def test_legacy_adapter_is_gone(self) -> None:
        """The one-release deprecation window for positional hooks is
        over: the adapter helpers no longer exist."""
        import repro.obs as obs
        import repro.obs.api as api

        for name in ("as_hook", "is_legacy_hook", "adapt_legacy_hook"):
            assert not hasattr(api, name)
            assert not hasattr(obs, name)
        assert not hasattr(StageEvent, "as_legacy_tuple")

    def test_add_hook_registers_callable_unwrapped(self, web) -> None:
        crawler = build_crawler(web)
        hook = lambda event: None  # noqa: E731
        crawler.pipeline.add_hook(hook)
        assert crawler.pipeline.hooks[-1] is hook

    def test_typed_events_carry_batch_index_and_extras(self, web) -> None:
        crawler = build_crawler(web, pipeline_batch_size=4)
        events: list[StageEvent] = []
        crawler.pipeline.add_hook(events.append)
        run_phase(crawler)
        assert {e.stage for e in events} == set(STAGE_NAMES)
        indices = [e.batch_index for e in events]
        assert indices == sorted(indices)
        assert indices[-1] >= 1, "crawl never advanced past round 0"
        accepted = sum(
            e.extras["accepted"] for e in events if e.stage == "classify"
        )
        assert accepted == crawler.obs.registry.value(
            "pipeline_docs_accepted_total"
        )


class TestHookExceptionIsolation:
    def test_raising_hook_does_not_abort_the_crawl(self, web) -> None:
        reference = run_phase(build_crawler(web))

        crawler = build_crawler(web)

        def explode(event) -> None:
            raise RuntimeError("observability must never kill the crawl")

        crawler.pipeline.add_hook(explode)
        stats = run_phase(crawler)

        assert stats.table1_row() == reference.table1_row()
        errors = crawler.obs.registry.value("pipeline_hook_errors_total")
        assert errors > 0
        # one error per stage event delivered to the broken hook
        batches = sum(
            child
            for child in crawler.obs.registry.snapshot()["counters"][
                "pipeline_stage_batches_total"
            ].values()
        )
        assert errors == batches

    def test_positional_hook_now_fails_per_event_not_fatally(
        self, web
    ) -> None:
        """A left-behind 4-argument hook no longer gets adapted; every
        delivery raises inside the isolation boundary instead of
        crashing the crawl."""
        crawler = build_crawler(web)
        crawler.pipeline.add_hook(lambda a, b, c, d: None)
        stats = run_phase(crawler)
        assert stats.visited_urls > 0
        assert crawler.obs.registry.value("pipeline_hook_errors_total") > 0
