"""The typed hook API: legacy adapter parity, hook-exception isolation."""

from __future__ import annotations

import warnings

import pytest

from repro.core.crawler import SOFT, FocusedCrawler, PhaseSettings
from repro.obs.api import (
    StageEvent,
    adapt_legacy_hook,
    as_hook,
    is_legacy_hook,
)
from repro.pipeline import STAGE_NAMES
from repro.web import SyntheticWeb

from tests.conftest import small_web_config
from tests.core.conftest import fast_engine_config
from tests.core.test_crawler import make_trained_classifier


@pytest.fixture(scope="module")
def web():
    return SyntheticWeb.generate(small_web_config())


def build_crawler(web, **overrides) -> FocusedCrawler:
    config = fast_engine_config(max_retries=2, **overrides)
    classifier = make_trained_classifier(web, config)
    return FocusedCrawler(web, classifier, config)


def run_phase(crawler, budget: int = 20):
    crawler.seed(
        crawler.web.seed_homepages(3), topic="ROOT/databases", priority=10.0
    )
    return crawler.crawl(
        PhaseSettings(name="t", focus=SOFT, fetch_budget=budget)
    )


class TestSignatureDetection:
    def test_legacy_four_arg_callables_are_detected(self) -> None:
        assert is_legacy_hook(lambda a, b, c, d: None)

        def named(stage, n_in, n_out, elapsed):
            pass

        assert is_legacy_hook(named)

    def test_typed_hooks_are_not_adapted(self) -> None:
        hook = lambda event: None  # noqa: E731
        assert not is_legacy_hook(hook)
        assert as_hook(hook) is hook

    def test_adaptation_warns_deprecation(self) -> None:
        with pytest.deprecated_call():
            adapt_legacy_hook(lambda a, b, c, d: None)

    def test_add_hook_warns_for_legacy_signatures(self, web) -> None:
        crawler = build_crawler(web)
        with pytest.deprecated_call():
            crawler.pipeline.add_hook(lambda a, b, c, d: None)


class TestLegacyAdapterParity:
    def test_adapter_replays_the_positional_arguments(self) -> None:
        calls: list[tuple] = []
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            adapter = adapt_legacy_hook(
                lambda stage, n_in, n_out, elapsed: calls.append(
                    (stage, n_in, n_out, elapsed)
                )
            )
        event = StageEvent(
            stage="classify", batch_index=7, in_size=8, out_size=6,
            elapsed=0.25, extras={"accepted": 4},
        )
        adapter(event)
        assert calls == [("classify", 8, 6, 0.25)]
        assert adapter.__wrapped_legacy__ is not None

    def test_legacy_and_typed_hooks_observe_identical_values(
        self, web
    ) -> None:
        crawler = build_crawler(web)
        legacy: list[tuple] = []
        typed: list[tuple] = []
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            crawler.pipeline.add_hook(
                lambda stage, n_in, n_out, elapsed: legacy.append(
                    (stage, n_in, n_out)
                )
            )
        crawler.pipeline.add_hook(
            lambda event: typed.append(
                (event.stage, event.in_size, event.out_size)
            )
        )
        run_phase(crawler)
        assert legacy, "hooks never fired"
        assert legacy == typed

    def test_typed_events_carry_batch_index_and_extras(self, web) -> None:
        crawler = build_crawler(web, pipeline_batch_size=4)
        events: list[StageEvent] = []
        crawler.pipeline.add_hook(events.append)
        run_phase(crawler)
        assert {e.stage for e in events} == set(STAGE_NAMES)
        indices = [e.batch_index for e in events]
        assert indices == sorted(indices)
        assert indices[-1] >= 1, "crawl never advanced past round 0"
        accepted = sum(
            e.extras["accepted"] for e in events if e.stage == "classify"
        )
        assert accepted == crawler.obs.registry.value(
            "pipeline_docs_accepted_total"
        )


class TestHookExceptionIsolation:
    def test_raising_hook_does_not_abort_the_crawl(self, web) -> None:
        reference = run_phase(build_crawler(web))

        crawler = build_crawler(web)

        def explode(event) -> None:
            raise RuntimeError("observability must never kill the crawl")

        crawler.pipeline.add_hook(explode)
        stats = run_phase(crawler)

        assert stats.table1_row() == reference.table1_row()
        errors = crawler.obs.registry.value("pipeline_hook_errors_total")
        assert errors > 0
        # one error per stage event delivered to the broken hook
        batches = sum(
            child
            for child in crawler.obs.registry.snapshot()["counters"][
                "pipeline_stage_batches_total"
            ].values()
        )
        assert errors == batches
