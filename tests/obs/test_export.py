"""Exporters: golden Prometheus text, JSON round-trip, progress lines."""

from __future__ import annotations

import io

from repro.obs import (
    MetricsRegistry,
    ProgressReporter,
    from_json,
    parse_prometheus,
    to_json,
    to_prometheus,
)
from repro.obs.api import StageEvent
from repro.obs.export import flatten_snapshot


def build_registry() -> MetricsRegistry:
    registry = MetricsRegistry(clock=lambda: 12.0)
    batches = registry.counter("pipeline_stage_batches_total")
    batches.labels(stage="fetch").inc(3)
    batches.labels(stage="classify").inc(2)
    registry.gauge("frontier_depth").set(17)
    histogram = registry.histogram(
        "pipeline_commit_batch_docs", buckets=(1.0, 4.0, 16.0)
    )
    for size in (1, 3, 8, 20):
        histogram.observe(size)
    registry.register_source(
        "robust", lambda: {"hosts_tracked": 5.0, "breaker_trips": 1.0}
    )
    return registry


GOLDEN_PROMETHEUS = """\
# TYPE pipeline_stage_batches_total counter
pipeline_stage_batches_total{stage="classify"} 2
pipeline_stage_batches_total{stage="fetch"} 3
# TYPE frontier_depth gauge
frontier_depth 17
# TYPE pipeline_commit_batch_docs histogram
pipeline_commit_batch_docs_bucket{le="1"} 1
pipeline_commit_batch_docs_bucket{le="4"} 2
pipeline_commit_batch_docs_bucket{le="16"} 3
pipeline_commit_batch_docs_bucket{le="+Inf"} 4
pipeline_commit_batch_docs_sum 32
pipeline_commit_batch_docs_count 4
# TYPE robust_breaker_trips gauge
robust_breaker_trips 1
# TYPE robust_hosts_tracked gauge
robust_hosts_tracked 5
"""


class TestPrometheusText:
    def test_golden_text_snapshot(self) -> None:
        assert to_prometheus(build_registry()) == GOLDEN_PROMETHEUS

    def test_text_round_trips_through_the_parser(self) -> None:
        registry = build_registry()
        parsed = parse_prometheus(to_prometheus(registry))
        assert parsed == flatten_snapshot(registry.snapshot())
        assert parsed['pipeline_stage_batches_total{stage="fetch"}'] == 3.0
        assert parsed['pipeline_commit_batch_docs_bucket{le="+Inf"}'] == 4.0


class TestJson:
    def test_json_round_trips_to_the_same_snapshot(self) -> None:
        registry = build_registry()
        assert from_json(to_json(registry)) == registry.snapshot()

    def test_json_is_canonical(self) -> None:
        registry = build_registry()
        assert to_json(registry) == to_json(registry)
        assert '"at": 12.0' in to_json(registry)


class TestProgressReporter:
    def expand_event(self, index: int) -> StageEvent:
        return StageEvent(
            stage="expand", batch_index=index, in_size=1, out_size=1,
            elapsed=0.0,
        )

    def test_prints_every_nth_round_from_the_registry(self) -> None:
        registry = MetricsRegistry()
        registry.counter("pipeline_stage_docs_in_total").labels(
            stage="convert"
        ).inc(40)
        registry.counter("pipeline_stage_docs_out_total").labels(
            stage="persist"
        ).inc(30)
        registry.counter("pipeline_docs_accepted_total").inc(25)
        stream = io.StringIO()
        reporter = ProgressReporter(registry, stream=stream, every=2)
        for index in range(4):
            reporter(self.expand_event(index))
            reporter(StageEvent(
                stage="classify", batch_index=index, in_size=1,
                out_size=1, elapsed=0.0,
            ))
        lines = stream.getvalue().splitlines()
        assert reporter.lines == 2
        assert lines == [
            "[obs] round=1 fetched=40 stored=30 accepted=25 hook_errors=0",
            "[obs] round=3 fetched=40 stored=30 accepted=25 hook_errors=0",
        ]
