"""Tracer: span nesting mirrors the stage order, ring bound holds."""

from __future__ import annotations

import pytest

from repro.core.crawler import SOFT, FocusedCrawler, PhaseSettings
from repro.obs import Tracer
from repro.pipeline import STAGE_NAMES
from repro.web import SyntheticWeb

from tests.conftest import small_web_config
from tests.core.conftest import fast_engine_config
from tests.core.test_crawler import make_trained_classifier

#: the back-half stages every committed round runs, in order
COMMIT_ORDER = ("convert", "analyze", "classify", "persist", "expand")


@pytest.fixture(scope="module")
def web():
    return SyntheticWeb.generate(small_web_config())


def crawl_trace(web, batch_size: int):
    config = fast_engine_config(
        max_retries=2,
        pipeline_batch_size=batch_size,
        trace_ring_size=100_000,
    )
    classifier = make_trained_classifier(web, config)
    crawler = FocusedCrawler(web, classifier, config)
    crawler.seed(web.seed_homepages(3), topic="ROOT/databases", priority=10.0)
    crawler.crawl(PhaseSettings(name="t", focus=SOFT, fetch_budget=25))
    return crawler.obs.tracer


class TestUnitTracer:
    def test_spans_nest_and_time_from_the_clock(self) -> None:
        tick = iter(range(100))
        tracer = Tracer(clock=lambda: float(next(tick)), maxlen=16)
        outer = tracer.start("crawl", kind="crawl")
        inner = tracer.start("batch:0", kind="micro_batch", parent=outer)
        tracer.finish(inner)
        tracer.finish(outer)
        assert inner.parent_id == outer.span_id
        assert outer.start == 0.0 and inner.start == 1.0
        assert inner.end == 2.0 and outer.end == 3.0
        # ring holds children before parents (finish order)
        assert [s.name for s in tracer.finished()] == ["batch:0", "crawl"]

    def test_ring_buffer_is_bounded(self) -> None:
        tracer = Tracer(maxlen=4)
        for i in range(10):
            tracer.event(f"e{i}")
        assert len(tracer.finished()) == 4
        assert [s.name for s in tracer.finished()] == [
            "e6", "e7", "e8", "e9"
        ]
        assert tracer.stats() == {
            "spans_started": 10.0,
            "spans_retained": 4.0,
            "spans_dropped": 6.0,
        }

    def test_disabled_tracer_retains_nothing(self) -> None:
        tracer = Tracer(enabled=False)
        span = tracer.start("x")
        tracer.finish(span)
        tracer.event("y")
        assert tracer.finished() == []
        assert tracer.stats()["spans_started"] == 0.0


class TestCrawlSpanNesting:
    @pytest.mark.parametrize("batch_size", [1, 3, 8])
    def test_stage_spans_match_stage_order(self, web, batch_size) -> None:
        tracer = crawl_trace(web, batch_size)
        crawls = tracer.finished(kind="crawl")
        assert len(crawls) == 1

        rounds = tracer.finished(kind="micro_batch")
        assert rounds, "no micro-batch spans were traced"
        assert all(r.parent_id == crawls[0].span_id for r in rounds)

        for round_span in rounds:
            stages = tracer.children_of(round_span, kind="stage")
            names = [s.name for s in stages]
            assert set(names) <= set(STAGE_NAMES)
            # front half: admit (possibly interleaved with fetch) in
            # pop order, all before the back half
            front = [n for n in names if n in ("admit", "fetch")]
            back = [n for n in names if n not in ("admit", "fetch")]
            assert names == front + back
            if back:
                # each commit pass replays the back half in stage order
                expected = [
                    stage for stage in COMMIT_ORDER
                    for _ in range(back.count(stage))
                ]
                assert sorted(back, key=COMMIT_ORDER.index) == expected
                assert back[0] == "convert"

    def test_decision_spans_are_children_of_classify(self, web) -> None:
        tracer = crawl_trace(web, 8)
        classify_ids = {
            s.span_id for s in tracer.finished(kind="stage")
            if s.name == "classify"
        }
        decisions = tracer.finished(kind="decision")
        assert decisions, "no per-document decision spans were traced"
        assert all(d.parent_id in classify_ids for d in decisions)
        for decision in decisions:
            assert set(decision.attrs) == {
                "url", "topic", "accepted", "confidence"
            }

    def test_batch_size_one_rounds_hold_one_document(self, web) -> None:
        tracer = crawl_trace(web, 1)
        for round_span in tracer.finished(kind="micro_batch"):
            admits = [
                s for s in tracer.children_of(round_span, kind="stage")
                if s.name == "admit"
            ]
            assert len(admits) == 1
