"""End-to-end observability: one registry spans every subsystem, and
instrumentation never changes a crawl outcome."""

from __future__ import annotations

import pytest

from repro.core import BingoConfig, BingoEngine
from repro.obs.export import flatten_snapshot, parse_prometheus, to_prometheus
from repro.search.engine import LocalSearchEngine
from repro.web import SyntheticWeb

from tests.conftest import small_web_config
from tests.core.conftest import fast_engine_config


def run_engine(instrumentation: bool = True) -> BingoEngine:
    web = SyntheticWeb.generate(small_web_config())
    config = fast_engine_config(instrumentation=instrumentation)
    engine = BingoEngine.for_portal(web, config=config)
    engine.run(harvesting_fetch_budget=120)
    return engine


@pytest.fixture(scope="module")
def engine() -> BingoEngine:
    engine = run_engine()
    search = LocalSearchEngine(engine.ctx.documents, obs=engine.obs)
    search.search("database research", topic="ROOT/databases")
    return engine


class TestOneRegistrySpansTheRuntime:
    def test_snapshot_covers_at_least_five_subsystems(self, engine) -> None:
        snapshot = engine.obs.registry.snapshot()
        assert set(snapshot["sources"]) >= {
            "crawl", "engine", "perf", "robust", "search", "storage"
        }
        # live counters from the pipeline, robustness and search layers
        assert "pipeline_stage_batches_total" in snapshot["counters"]
        assert "perf_link_analysis_runs_total" in snapshot["counters"]
        assert "search_queries_total" in snapshot["counters"]

    def test_sources_report_real_activity(self, engine) -> None:
        snapshot = engine.obs.registry.snapshot()
        assert snapshot["sources"]["crawl"]["visited_urls"] > 0
        assert snapshot["sources"]["storage"]["rows_loaded"] > 0
        assert snapshot["sources"]["perf"]["kernel_batch_calls"] > 0
        assert snapshot["sources"]["robust"]["hosts_tracked"] > 0
        assert snapshot["sources"]["engine"]["retrainings"] > 0
        assert snapshot["sources"]["search"]["queries"] == 1.0

    def test_registry_agrees_with_the_stats_surfaces(self, engine) -> None:
        snapshot = engine.obs.registry.snapshot()
        assert snapshot["sources"]["storage"] == engine.loader.stats()
        assert snapshot["sources"]["robust"] == engine.ctx.hosts.stats()
        assert snapshot["sources"]["engine"] == engine.stats()
        classify_batches = engine.obs.registry.value(
            "pipeline_stage_batches_total", stage="classify"
        )
        assert classify_batches > 0

    def test_snapshot_round_trips_through_both_exporters(
        self, engine
    ) -> None:
        import json

        registry = engine.obs.registry
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot, sort_keys=True)) == snapshot
        assert parse_prometheus(to_prometheus(registry)) == flatten_snapshot(
            snapshot
        )

    def test_snapshot_timestamp_is_simulated_time(self, engine) -> None:
        assert engine.obs.registry.snapshot()["at"] == engine.ctx.clock.now


class TestInstrumentationParity:
    def test_obs_on_and_off_crawl_identically(self) -> None:
        on = run_engine(instrumentation=True)
        off = run_engine(instrumentation=False)
        assert (
            on.ctx.stats.table1_row() == off.ctx.stats.table1_row()
        )
        assert [d.final_url for d in on.ctx.documents] == [
            d.final_url for d in off.ctx.documents
        ]
        assert on.ctx.clock.now == off.ctx.clock.now

    def test_disabled_instrumentation_snapshots_empty(self) -> None:
        engine = run_engine(instrumentation=False)
        snapshot = engine.obs.registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["sources"] == {}
        assert engine.obs.tracer.finished() == []
