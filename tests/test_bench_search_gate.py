"""The search-benchmark regression gate (pure logic, no timing).

``benchmarks/run_search.py --check`` guards the indexed-vs-brute
speedup ratios plus an absolute acceptance floor on the p50 latency
speedup; these tests drive
:func:`~benchmarks.run_search.check_regression` directly with synthetic
payloads so every gate (and every tolerance edge) is exercised without
timing anything.
"""

from __future__ import annotations

from benchmarks.run_search import MIN_P50_SPEEDUP, check_regression


def payload(speedup_p50=12.0, speedup_qps=10.0) -> dict:
    return {
        "schema": 1,
        "latency": {
            "speedup_p50": speedup_p50,
            "speedup_qps": speedup_qps,
        },
    }


def test_identical_run_passes() -> None:
    assert check_regression(payload(), payload(), 0.30) == []


def test_floor_is_checked_without_a_baseline() -> None:
    assert check_regression(payload(), None, 0.30) == []
    failures = check_regression(payload(speedup_p50=4.0), None, 0.30)
    assert len(failures) == 1
    assert "acceptance floor" in failures[0]
    assert MIN_P50_SPEEDUP == 5.0


def test_small_drift_within_tolerance_passes() -> None:
    current = payload(speedup_p50=9.0, speedup_qps=7.5)
    assert check_regression(current, payload(), 0.30) == []


def test_p50_ratio_regression_fails() -> None:
    failures = check_regression(payload(speedup_p50=7.0), payload(), 0.30)
    assert len(failures) == 1
    assert "p50 latency speedup" in failures[0]


def test_qps_ratio_regression_fails() -> None:
    failures = check_regression(payload(speedup_qps=5.0), payload(), 0.30)
    assert len(failures) == 1
    assert "throughput speedup" in failures[0]


def test_floor_and_ratio_both_reported() -> None:
    current = payload(speedup_p50=3.0, speedup_qps=2.0)
    failures = check_regression(current, payload(), 0.30)
    assert len(failures) == 3  # floor + both ratios
    assert any("acceptance floor" in line for line in failures)


def test_missing_baseline_fields_are_skipped() -> None:
    baseline = {"schema": 1, "latency": {}}
    assert check_regression(payload(), baseline, 0.30) == []
