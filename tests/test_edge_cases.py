"""Assorted edge-case tests across modules (gap coverage)."""

from __future__ import annotations

import pytest

from repro.analysis.graph import LinkGraph
from repro.analysis.hits import hits
from repro.core.dedup import DuplicateDetector
from repro.ml.kmeans import KMeans
from repro.ml.meta import MetaClassifier
from repro.text.vectorizer import SparseVector
from repro.web.clock import SimulatedClock, WorkerPool
from repro.web.dblp import DblpRegistry
from repro.web.model import Researcher
from repro.web.urls import join_url, normalize_url


class TestWorkerPoolExtras:
    def test_next_free_tracks_earliest_worker(self) -> None:
        clock = SimulatedClock()
        pool = WorkerPool(size=2, clock=clock)
        pool.run(5.0)
        pool.run(3.0)
        assert pool.next_free == 3.0


class TestHitsNonConvergence:
    def test_iteration_cap_respected(self) -> None:
        graph = LinkGraph()
        for i in range(6):
            graph.add_edge(i, (i + 1) % 6)  # a cycle: slow to converge
        result = hits(graph, max_iterations=2, tolerance=0.0)
        assert result.iterations == 2
        assert not result.converged


class TestKMeansSingleCluster:
    def test_k_equal_one(self) -> None:
        docs = [SparseVector({"a": 1.0}) for _ in range(4)]
        model = KMeans(k=1, seed=0).fit(docs)
        assert model.sizes() == [4]
        assert model.label(0)  # label still produced


class TestMetaDecisionValue:
    def test_decision_returns_weighted_sum(self) -> None:
        from tests.ml.test_meta import FixedClassifier

        meta = MetaClassifier(
            [FixedClassifier(1), FixedClassifier(-1)], weights=[2.0, 1.0]
        )
        v = SparseVector({"x": 1.0})
        assert meta.decision(v) == pytest.approx(1.0)
        assert meta.classify(v).decision == 1


class TestDedupForget:
    def test_forget_allows_retry(self) -> None:
        detector = DuplicateDetector()
        assert not detector.is_known_ip_path("ip", "http://h/p")
        detector.forget_ip_path("ip", "http://h/p")
        assert not detector.is_known_ip_path("ip", "http://h/p")

    def test_forget_unknown_is_noop(self) -> None:
        DuplicateDetector().forget_ip_path("ip", "http://h/p")


class TestUrlEdges:
    def test_join_with_empty_href(self) -> None:
        assert join_url("http://h/a/b.html", "") == "http://h/a/"

    def test_normalize_preserves_query_like_paths(self) -> None:
        # we model no query strings; '?' stays inside the path segment
        out = normalize_url("http://h/a?b=1")
        assert out == "http://h/a?b=1"


class TestRegistryBoundaries:
    def test_prefix_is_path_anchored(self) -> None:
        registry = DblpRegistry([
            Researcher(
                author_id=0, name="a", topic="t", publication_count=5,
                homepage_page_id=0,
                homepage_url="http://u/~ann/index.html",
            ),
        ])
        # '~ann' prefixes '~anne' lexicographically but the trailing '/'
        # in the stored prefix prevents a false match
        assert registry.author_of_url("http://u/~anne/index.html") is None
        assert registry.author_of_url("http://u/~ann/p/q.pdf") == 0

    def test_empty_registry(self) -> None:
        registry = DblpRegistry([])
        assert registry.author_of_url("http://x/") is None
        assert registry.found_authors(["http://x/"]) == set()
        assert registry.score(["http://x/"], cutoffs=[1], top_k=5) == [
            registry.score(["http://x/"], cutoffs=[1], top_k=5)[0]
        ]
