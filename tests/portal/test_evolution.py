"""Web evolution: deterministic mutation schedule over a synthetic web.

These tests generate *fresh* webs (never the shared session fixture):
evolution mutates the page list and URL map in place.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.portal import EvolutionConfig, WebEvolution
from repro.web import SyntheticWeb

from tests.conftest import small_web_config

#: rates high enough that every mutation kind fires within a few ticks
BUSY = dict(
    mutation_rate=0.1,
    death_rate=0.05,
    birth_rate=0.05,
    link_rot_rate=0.05,
)


def fresh_web(seed: int = 7) -> SyntheticWeb:
    return SyntheticWeb.generate(small_web_config(seed=seed))


def busy_config(seed: int = 5) -> EvolutionConfig:
    return EvolutionConfig(seed=seed, **BUSY)


def fingerprint(web: SyntheticWeb) -> tuple:
    """Everything evolution can touch, in a comparable shape."""
    return (
        [
            (p.page_id, p.url, p.revision, p.length, tuple(p.out_links))
            for p in web.pages
        ],
        sorted(web.url_map),
    )


class TestConfigValidation:
    def test_tick_seconds_must_be_positive(self) -> None:
        with pytest.raises(ConfigError):
            WebEvolution(fresh_web(), EvolutionConfig(tick_seconds=0))

    def test_rates_must_be_fractions(self) -> None:
        with pytest.raises(ConfigError):
            WebEvolution(fresh_web(), EvolutionConfig(mutation_rate=1.5))
        with pytest.raises(ConfigError):
            WebEvolution(fresh_web(), EvolutionConfig(death_rate=-0.1))


class TestSchedule:
    def test_advance_is_tick_quantized_and_idempotent(self) -> None:
        evo = WebEvolution(fresh_web(), busy_config())
        tick = evo.config.tick_seconds
        assert evo.advance_to(tick * 0.9) == 0
        assert evo.advance_to(tick * 3) == 3
        assert evo.applied_tick == 3
        assert evo.advance_to(tick * 3) == 0
        assert evo.advance_to(tick * 3.7) == 0
        assert evo.advance_to(tick * 4) == 1

    def test_history_is_independent_of_increments(self) -> None:
        one_jump = WebEvolution(fresh_web(), busy_config())
        stepped = WebEvolution(fresh_web(), busy_config())
        tick = one_jump.config.tick_seconds
        one_jump.advance_to(tick * 12)
        for step in range(1, 25):
            stepped.advance_to(tick * 12 * step / 24)
        assert one_jump.stats() == stepped.stats()
        assert fingerprint(one_jump.web) == fingerprint(stepped.web)
        assert one_jump.changed_at == stepped.changed_at

    def test_every_mutation_kind_fires(self) -> None:
        evo = WebEvolution(fresh_web(), busy_config())
        evo.advance_to(evo.config.tick_seconds * 12)
        stats = evo.stats()
        assert stats["mutations"] > 0
        assert stats["deaths"] > 0
        assert stats["births"] > 0
        assert stats["links_rotted"] > 0
        assert stats["pages_alive"] < stats["pages_total"]


class TestGroundTruth:
    def test_protected_pages_survive(self) -> None:
        web = fresh_web()
        evo = WebEvolution(web, busy_config())
        evo.advance_to(evo.config.tick_seconds * 20)
        assert evo.deaths > 0
        for researcher in web.researchers:
            assert evo.alive(researcher.homepage_page_id)
        for page_id in web.needles:
            assert evo.alive(page_id)
        for name, host in web.hosts.items():
            if not host.locked:
                continue
            for page in web.pages:
                if page.host == name:
                    assert evo.alive(page.page_id)

    def test_dead_pages_drop_out_of_the_url_map(self) -> None:
        web = fresh_web()
        evo = WebEvolution(web, busy_config())
        evo.advance_to(evo.config.tick_seconds * 10)
        dead = [p for p in web.pages if not evo.alive(p.page_id)]
        assert dead
        for page in dead:
            assert page.url not in web.url_map
            assert evo.changed_at[page.page_id] > 0

    def test_born_pages_are_fetchable_and_linked(self) -> None:
        web = fresh_web()
        evo = WebEvolution(web, busy_config())
        evo.advance_to(evo.config.tick_seconds * 10)
        assert evo.born_page_ids
        linked_targets = {
            target for p in web.pages for target in p.out_links
        }
        for page_id in evo.born_page_ids:
            page = web.pages[page_id]
            assert page_id in evo.changed_at
            if not evo.alive(page_id):  # births can die in later ticks
                assert page.url not in web.url_map
                continue
            assert web.url_map[page.url] == (page_id, "canonical")
            assert web.renderer.payload(page)
        assert any(
            page_id in linked_targets for page_id in evo.born_page_ids
        )

    def test_mutation_changes_the_rendering(self) -> None:
        web = fresh_web()
        evo = WebEvolution(
            web, EvolutionConfig(seed=5, mutation_rate=0.1)
        )
        before = {
            p.page_id: web.renderer.payload(p)
            for p in web.pages
            if p.mime == "text/html"
        }
        evo.advance_to(evo.config.tick_seconds * 3)
        mutated = [
            page_id for page_id in sorted(evo.changed_at)
            if page_id in before
            and web.renderer.payload(web.pages[page_id]) != before[page_id]
        ]
        assert evo.mutations > 0
        assert mutated


class TestCheckpoint:
    def test_restore_replays_to_identical_state(self) -> None:
        first = WebEvolution(fresh_web(), busy_config())
        first.advance_to(first.config.tick_seconds * 9)
        state = json.loads(json.dumps(first.snapshot()))

        second = WebEvolution(fresh_web(), busy_config())
        second.restore(state)
        assert second.stats() == first.stats()
        assert fingerprint(second.web) == fingerprint(first.web)
        assert second.changed_at == first.changed_at
        # and the futures agree too
        first.advance_to(first.config.tick_seconds * 14)
        second.advance_to(second.config.tick_seconds * 14)
        assert fingerprint(second.web) == fingerprint(first.web)

    def test_restore_demands_a_fresh_web(self) -> None:
        evolved = WebEvolution(fresh_web(), busy_config())
        evolved.advance_to(evolved.config.tick_seconds * 2)
        state = evolved.snapshot()
        with pytest.raises(ConfigError):
            evolved.restore(state)

    def test_restore_rejects_a_foreign_seed(self) -> None:
        donor = WebEvolution(fresh_web(), busy_config(seed=5))
        donor.advance_to(donor.config.tick_seconds * 2)
        other = WebEvolution(fresh_web(), busy_config(seed=6))
        with pytest.raises(ConfigError):
            other.restore(donor.snapshot())
