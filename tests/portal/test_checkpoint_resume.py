"""Kill-and-resume: a checkpointed portal continues bit-identically.

The scenario each test pins: a portal lives through evolution and a
folded recrawl cycle, then a second cycle is *interrupted* mid-drain
(``fetch_limit``), checkpointed, and the process "dies".  A fresh
process re-runs the deterministic crawl, restores the JSON-round-tripped
checkpoint, and both portals drain the leftover frontier -- every
freshness counter, scheduler stat and ranked result must agree.

Epoch note: a restored engine rebuilds its idf lineage from scratch, so
epoch identity across restore is ``(ordinal, generation, reason)`` --
the snapshot component intentionally follows the new vectorizer.
"""

from __future__ import annotations

import json

from tests.portal.conftest import build_portal

QUERIES = ("database recovery", "mining patterns")


def epoch_identity(epoch):
    return (epoch.ordinal, epoch.generation, epoch.reason)


def result_tuples(search, query):
    return [
        (h.document.doc_id, h.score)
        for h in search.search(query, top_k=10)
    ]


def interrupt_and_checkpoint(portal) -> dict:
    """Evolve, fold one cycle, interrupt a second one, checkpoint."""
    portal.evolve(3600.0)
    folded = portal.recrawl(budget=60)
    assert folded.folded
    portal.evolve(1800.0)
    partial = portal.recrawl(budget=40, fetch_limit=10)
    assert not partial.folded
    assert partial.search is None
    assert len(portal.scheduler.frontier) > 0
    # the checkpoint must survive a process boundary
    return json.loads(json.dumps(portal.checkpoint()))


def assert_resumed_portals_agree(original, restored) -> None:
    horizon = original.clock.now
    done_a = original.recrawl(None)
    done_b = restored.recrawl(None)
    assert done_a.folded and done_b.folded
    assert done_a.stats() == done_b.stats()
    assert original.scheduler.stats() == restored.scheduler.stats()
    assert original.freshness(at=horizon) == restored.freshness(at=horizon)
    assert epoch_identity(original.search.epoch) == epoch_identity(
        restored.search.epoch
    )
    for query in QUERIES:
        assert result_tuples(original.search, query) == result_tuples(
            restored.search, query
        )


class TestKillMidRecrawl:
    def test_resume_matches_the_uninterrupted_portal(self) -> None:
        original = build_portal()
        state = interrupt_and_checkpoint(original)

        restored = build_portal()
        restored.restore(state)
        assert restored.cycles_run == original.cycles_run
        assert restored.clock.now == original.clock.now
        assert (
            restored.evolution.stats() == original.evolution.stats()
        )
        # the restored engine serves exactly the checkpoint-time corpus:
        # the pending (unfolded) delta must not leak into it
        assert [d.doc_id for d in restored.search.documents] == [
            d.doc_id for d in original.search.documents
        ]
        assert epoch_identity(restored.search.epoch) == epoch_identity(
            original.search.epoch
        )
        assert_resumed_portals_agree(original, restored)

    def test_checkpoint_restores_pending_delta_counters(self) -> None:
        original = build_portal()
        state = interrupt_and_checkpoint(original)
        restored = build_portal().restore(state)

        ours = original.scheduler.pending
        theirs = restored.scheduler.pending
        assert [d.doc_id for d in theirs.added] == [
            d.doc_id for d in ours.added
        ]
        assert [d.doc_id for d in theirs.changed] == [
            d.doc_id for d in ours.changed
        ]
        assert theirs.removed == ours.removed
        assert sorted(theirs.previous) == sorted(ours.previous)
        assert len(restored.scheduler.frontier) == len(
            original.scheduler.frontier
        )


class TestShardedEpochRoundTrip:
    """The ``--workers N`` path: sharded frontier, same guarantees."""

    def test_sharded_resume_matches_and_epoch_round_trips(self) -> None:
        original = build_portal(workers=3)
        state = interrupt_and_checkpoint(original)
        assert state["scheduler"]["workers"] == 3

        restored = build_portal(workers=3)
        restored.restore(state)
        assert epoch_identity(restored.search.epoch) == epoch_identity(
            original.search.epoch
        )
        assert_resumed_portals_agree(original, restored)
        # a further full cycle after resume stays in lockstep
        original.evolve(1800.0)
        restored.evolve(1800.0)
        cycle_a = original.recrawl(budget=30)
        cycle_b = restored.recrawl(budget=30)
        assert cycle_a.stats() == cycle_b.stats()
        assert epoch_identity(cycle_a.epoch) == epoch_identity(
            cycle_b.epoch
        )

    def test_sharded_and_single_worker_portals_share_the_lifecycle(
        self,
    ) -> None:
        sharded = build_portal(workers=3)
        single = build_portal(workers=1)
        for portal in (sharded, single):
            portal.evolve(3600.0)
        cycle_s = sharded.recrawl(budget=50)
        cycle_1 = single.recrawl(budget=50)
        assert cycle_s.folded and cycle_1.folded
        # host partitioning reorders fetches (latencies and discovered
        # doc ids may permute) but the order-independent outcome agrees
        assert epoch_identity(cycle_s.epoch) == epoch_identity(
            cycle_1.epoch
        )
        for field in ("changed", "unchanged", "dead", "fetched"):
            assert getattr(cycle_s.recrawl, field) == getattr(
                cycle_1.recrawl, field
            ), field
        assert sorted(
            d.doc_id for d in sharded.search.documents
        ) == sorted(d.doc_id for d in single.search.documents)
        assert sorted(
            d.final_url for d in sharded.search.documents
        ) == sorted(d.final_url for d in single.search.documents)
