"""Shared builders for the living-portal test suite.

Portal tests mutate the web (evolution) and the crawl context
(recrawl), so fixtures here build *fresh* engines rather than sharing
the session-scoped ``small_web`` -- one build is ~2 seconds.
"""

from __future__ import annotations

from repro.core import BingoEngine
from repro.core.ontology import TopicTree
from repro.portal import EvolutionConfig, LivingPortal
from repro.web import SyntheticWeb

from tests.conftest import small_web_config
from tests.core.conftest import fast_engine_config

#: one evolution seed used across parity/checkpoint scenarios so every
#: rebuilt portal replays the identical mutation schedule
EVOLUTION_SEED = 11


def build_engine(
    seed: int = 7,
    learning_budget: int = 120,
    harvesting_budget: int = 250,
) -> BingoEngine:
    """A freshly crawled two-topic engine over a fresh small web."""
    web = SyntheticWeb.generate(small_web_config(seed=seed))
    tree = TopicTree.from_nested({"databases": {}, "datamining": {}})
    seeds = {
        "ROOT/databases": web.seed_homepages(3, topic="databases"),
        "ROOT/datamining": web.seed_homepages(3, topic="datamining"),
    }
    engine = BingoEngine(
        web, tree, seeds,
        config=fast_engine_config(learning_fetch_budget=learning_budget),
    )
    engine.run(harvesting_fetch_budget=harvesting_budget)
    return engine


def build_portal(workers: int = 1, **engine_kwargs) -> LivingPortal:
    engine = build_engine(**engine_kwargs)
    portal = LivingPortal(
        engine,
        evolution_config=EvolutionConfig(seed=EVOLUTION_SEED),
        workers=workers,
    )
    portal.open()
    return portal
