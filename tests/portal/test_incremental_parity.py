"""Acceptance gate: incremental folds are bit-identical to rebuilds.

After a batch of evolve + recrawl cycles, the portal's incrementally
maintained search engine (``apply_delta`` folds, partial vector
recomputation, posting reuse) must be indistinguishable -- document
frequencies, idf snapshot, every vector weight, and every ranked result
(ids, scores, order) -- from a :class:`LocalSearchEngine` rebuilt from
scratch over the same served documents.
"""

from __future__ import annotations

import pytest

from repro.search.engine import LocalSearchEngine, RankingWeights

from tests.portal.conftest import build_portal

QUERIES = (
    "database recovery",
    "mining patterns",
    "recovery algorithms source code",
)

FILTERS = (
    (None, True),
    ("ROOT/databases", True),
    ("ROOT/databases", False),
    ("ROOT/datamining", True),
    ("ROOT/nonexistent", True),
)

WEIGHTS = (
    RankingWeights(cosine=1.0),
    RankingWeights(cosine=0.5, confidence=0.5),
    RankingWeights(cosine=0.4, confidence=0.3, authority=0.3),
)


def hit_tuples(hits):
    return [
        (h.document.doc_id, h.score, h.cosine, h.confidence, h.authority)
        for h in hits
    ]


@pytest.fixture(scope="module")
def evolved_portal():
    """A portal that lived through three mutation/recrawl cycles."""
    portal = build_portal()
    folds = 0
    for _ in range(3):
        portal.evolve(3600.0)
        cycle = portal.recrawl(budget=60)
        assert cycle.folded
        if cycle.search is not None:
            folds += 1
    # the scenario must actually exercise the incremental path
    assert folds > 0, "evolution produced no delta to fold"
    return portal


@pytest.fixture(scope="module")
def rebuilt(evolved_portal):
    """The from-scratch reference over the identical served corpus."""
    return LocalSearchEngine(evolved_portal.search.documents)


class TestIncrementalEqualsRebuild:
    def test_corpus_and_idf_statistics_match(
        self, evolved_portal, rebuilt
    ) -> None:
        incremental = evolved_portal.search
        assert [d.doc_id for d in incremental.documents] == [
            d.doc_id for d in rebuilt.documents
        ]
        a = incremental.vectorizer.statistics
        b = rebuilt.vectorizer.statistics
        assert a.document_count == b.document_count
        assert dict(a.document_frequency) == dict(b.document_frequency)
        assert dict(a.snapshot_df) == dict(b.snapshot_df)
        assert a.snapshot_size == b.snapshot_size

    def test_every_vector_is_bit_identical(
        self, evolved_portal, rebuilt
    ) -> None:
        incremental = evolved_portal.search
        assert incremental._vectors.keys() == rebuilt._vectors.keys()
        for doc_id in sorted(incremental._vectors):
            ours = incremental._vectors[doc_id]
            reference = rebuilt._vectors[doc_id]
            assert ours.weights == reference.weights, doc_id
            assert ours.norm == reference.norm, doc_id

    def test_ranked_results_match_across_topk_and_filters(
        self, evolved_portal, rebuilt
    ) -> None:
        incremental = evolved_portal.search
        size = len(rebuilt.documents)
        for query in QUERIES:
            for topic, exact in FILTERS:
                for weights in WEIGHTS:
                    for top_k in (1, 3, 10, size + 5):
                        ours = incremental.search(
                            query, topic=topic, exact=exact,
                            weights=weights, top_k=top_k,
                        )
                        reference = rebuilt.search(
                            query, topic=topic, exact=exact,
                            weights=weights, top_k=top_k,
                        )
                        assert hit_tuples(ours) == hit_tuples(reference), (
                            f"query={query!r} topic={topic!r} "
                            f"exact={exact} top_k={top_k}"
                        )

    def test_indexed_path_still_matches_brute_force(
        self, evolved_portal
    ) -> None:
        incremental = evolved_portal.search
        for query in QUERIES:
            query_vector = incremental._query_vector(query)
            brute = incremental.rank_all(
                incremental.filter(None), query_vector, RankingWeights()
            )
            indexed = incremental.search(query, top_k=10)
            assert hit_tuples(indexed) == hit_tuples(brute[:10])

    def test_epoch_advanced_once_per_fold(self, evolved_portal) -> None:
        epoch = evolved_portal.search.epoch
        assert epoch.reason == "recrawl"
        assert epoch.generation >= 1
        assert epoch.ordinal >= epoch.generation


class TestNonEvolvingBaseline:
    def test_recrawl_without_evolution_changes_nothing(self) -> None:
        portal = build_portal()
        before = [
            (d.doc_id, d.final_url) for d in portal.search.documents
        ]
        epoch_before = portal.search.epoch
        cycle = portal.recrawl(budget=40)
        assert cycle.folded
        assert cycle.search is None  # empty delta: no epoch churn
        assert cycle.recrawl.changed == 0
        assert cycle.recrawl.dead == 0
        assert portal.search.epoch == epoch_before
        assert [
            (d.doc_id, d.final_url) for d in portal.search.documents
        ] == before
        report = portal.freshness()
        assert report.stale_documents == 0
        assert report.dead_indexed == 0
        assert report.lag_max == 0.0
