"""Content digests and the delta container's merge semantics."""

from __future__ import annotations

import json

from repro.portal import DigestStore, DocumentDelta, content_digest

from tests.search.conftest import make_doc


class TestContentDigest:
    def test_stable_and_discriminating(self) -> None:
        assert content_digest("body") == content_digest("body")
        assert content_digest("body") != content_digest("other")
        assert len(content_digest("body")) == 32

    def test_none_equals_empty_payload(self) -> None:
        assert content_digest(None) == content_digest("")


class TestDigestStore:
    def test_new_changed_unchanged_transitions(self) -> None:
        store = DigestStore()
        url = "http://a.example/p.html"
        assert store.record(url, "d1", at=1.0, page_id=4) == DigestStore.NEW
        assert store.record(url, "d1", at=2.0) == DigestStore.UNCHANGED
        assert store.record(url, "d2", at=3.0) == DigestStore.CHANGED
        row = store.get(url)
        assert row["digest"] == "d2"
        assert row["page_id"] == 4
        assert row["fetched_at"] == 3.0
        assert row["check_count"] == 3
        assert row["change_count"] == 1
        assert store.digest_of(url) == "d2"
        assert url in store and len(store) == 1

    def test_forget_drops_dead_urls(self) -> None:
        store = DigestStore()
        store.record("http://a.example/p.html", "d1", at=1.0)
        assert store.forget("http://a.example/p.html")
        assert not store.forget("http://a.example/p.html")
        assert store.digest_of("http://a.example/p.html") is None
        assert len(store) == 0

    def test_stats_are_snake_case_floats(self) -> None:
        store = DigestStore()
        store.record("http://a.example/p.html", "d1", at=1.0)
        store.record("http://a.example/p.html", "d2", at=2.0)
        stats = store.stats()
        assert stats["digests_stored"] == 1.0
        assert stats["digests_recorded"] == 2.0
        assert stats["digest_changes_detected"] == 1.0
        assert all(isinstance(v, float) for v in stats.values())

    def test_snapshot_restore_round_trips_through_json(self) -> None:
        store = DigestStore()
        store.record("http://a.example/p.html", "d1", at=1.0, page_id=1)
        store.record("http://b.example/q.html", "d2", at=2.0, page_id=2)
        store.record("http://a.example/p.html", "d3", at=3.0)
        state = json.loads(json.dumps(store.snapshot()))

        restored = DigestStore()
        restored.restore(state)
        assert restored.stats() == store.stats()
        for url in ("http://a.example/p.html", "http://b.example/q.html"):
            assert restored.get(url) == store.get(url)
        # restored store keeps detecting changes with full history
        assert (
            restored.record("http://a.example/p.html", "d3", at=4.0)
            == DigestStore.UNCHANGED
        )


class TestDocumentDeltaMerge:
    """One delta spans many fetches; repeats must collapse."""

    def test_change_of_an_added_doc_updates_the_addition(self) -> None:
        delta = DocumentDelta()
        v1 = make_doc(7, {"a": 1})
        v2 = make_doc(7, {"a": 2})
        delta.record_added(v1)
        delta.record_changed(v1, v2)
        assert delta.added == [v2]
        assert delta.changed == [] and delta.previous == {}

    def test_repeat_changes_collapse_to_oldest_previous(self) -> None:
        delta = DocumentDelta()
        v1, v2, v3 = (make_doc(7, {"a": n}) for n in (1, 2, 3))
        delta.record_changed(v1, v2)
        delta.record_changed(v2, v3)
        assert delta.changed == [v3]
        assert delta.previous == {7: v1}

    def test_removal_of_an_added_doc_vanishes(self) -> None:
        delta = DocumentDelta()
        doc = make_doc(7, {"a": 1})
        delta.record_added(doc)
        assert delta.record_removed(doc) is False
        assert delta.empty

    def test_removal_of_a_changed_doc_keeps_oldest_previous(self) -> None:
        delta = DocumentDelta()
        v1, v2 = make_doc(7, {"a": 1}), make_doc(7, {"a": 2})
        delta.record_changed(v1, v2)
        assert delta.record_removed(v2) is True
        assert delta.changed == []
        assert delta.removed == [7]
        assert delta.previous == {7: v1}

    def test_stats_and_empty(self) -> None:
        delta = DocumentDelta()
        assert delta.empty
        delta.record_added(make_doc(1, {"a": 1}))
        delta.record_changed(make_doc(2, {"b": 1}), make_doc(2, {"b": 2}))
        delta.record_removed(make_doc(3, {"c": 1}))
        assert not delta.empty
        assert delta.stats() == {
            "delta_added": 1.0,
            "delta_changed": 1.0,
            "delta_removed": 1.0,
        }
