"""Package-level tests: public API surface and lazy exports."""

from __future__ import annotations

import pytest

import repro


class TestLazyExports:
    @pytest.mark.parametrize(
        "name",
        [
            "SyntheticWeb", "WebGraphConfig", "BingoEngine", "BingoConfig",
            "FocusedCrawler", "TopicTree", "LocalSearchEngine",
        ],
    )
    def test_headline_api_resolves(self, name: str) -> None:
        attribute = getattr(repro, name)
        assert attribute is not None
        assert attribute.__name__ == name

    def test_unknown_attribute_raises(self) -> None:
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_errors_exported_eagerly(self) -> None:
        assert issubclass(repro.CrawlError, repro.ReproError)
        assert issubclass(repro.SchemaError, repro.StorageError)

    def test_version(self) -> None:
        assert repro.__version__


class TestSubpackageAll:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.text", "repro.web", "repro.storage", "repro.ml",
            "repro.analysis", "repro.core", "repro.search",
            "repro.semantic", "repro.experiments",
        ],
    )
    def test_all_names_resolve(self, module_name: str) -> None:
        import importlib

        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert getattr(module, name) is not None, name
