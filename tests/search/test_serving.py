"""The serving tier: rate limits, idempotency, caching, Zipfian load."""

from __future__ import annotations

import pytest

from repro.errors import SearchError
from repro.obs import Obs
from repro.search.engine import LocalSearchEngine
from repro.search.serving import (
    LoadConfig,
    QueryRequest,
    QueryServer,
    TokenBucket,
    build_query_pool,
    percentile,
    run_query_load,
)
from repro.web.clock import SimulatedClock


def request(
    request_id: str = "r1",
    client_id: str = "alice",
    query: str = "recovery",
    **kwargs,
) -> QueryRequest:
    return QueryRequest(
        client_id=client_id, request_id=request_id, query=query, **kwargs
    )


class TestTokenBucket:
    def test_burst_then_refill(self) -> None:
        bucket = TokenBucket(capacity=2.0, refill_rate=1.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.5)  # only half a token back
        assert bucket.try_acquire(1.5)
        assert not bucket.try_acquire(1.5)

    def test_refill_caps_at_capacity(self) -> None:
        bucket = TokenBucket(capacity=3.0, refill_rate=10.0)
        for _ in range(3):
            assert bucket.try_acquire(100.0)
        assert not bucket.try_acquire(100.0)

    def test_time_never_rewinds(self) -> None:
        bucket = TokenBucket(capacity=1.0, refill_rate=1.0)
        assert bucket.try_acquire(10.0)
        # an out-of-order earlier timestamp must not mint tokens
        assert not bucket.try_acquire(5.0)
        assert bucket.updated == 10.0

    def test_rejects_bad_parameters(self) -> None:
        with pytest.raises(SearchError):
            TokenBucket(capacity=0.0, refill_rate=1.0)
        with pytest.raises(SearchError):
            TokenBucket(capacity=1.0, refill_rate=-1.0)


@pytest.fixture()
def server(corpus) -> QueryServer:
    engine = LocalSearchEngine(corpus)
    return QueryServer(engine, clock=SimulatedClock(), rate=5.0, burst=3.0)


class TestIdempotency:
    def test_replay_returns_stored_response_without_rerun(self, server) -> None:
        first = server.handle(request("r1"))
        assert first.ok
        queries_before = server.engine.queries
        tokens_before = server._buckets["alice"].tokens
        replay = server.handle(request("r1"))
        assert replay is first  # the very same response object
        assert server.engine.queries == queries_before
        assert server._buckets["alice"].tokens == tokens_before
        assert server.replayed == 1

    def test_failed_queries_are_stored_for_replay(self, server) -> None:
        first = server.handle(request("r1", query="the and of"))
        assert first.status == "failed"
        assert first.error is not None
        failed_before = server.engine.queries_failed
        assert server.handle(request("r1", query="the and of")) is first
        assert server.engine.queries_failed == failed_before

    def test_rejected_requests_are_not_stored(self, server) -> None:
        for sequence in range(3):
            assert server.handle(request(f"r{sequence}")).ok
        rejected = server.handle(request("r-limited"))
        assert rejected.status == "rejected"
        assert ("alice", "r-limited") not in server._responses
        # the retry succeeds once the bucket refills
        server.clock.advance(1.0)
        retried = server.handle(request("r-limited"))
        assert retried.ok
        assert ("alice", "r-limited") in server._responses

    def test_buckets_are_per_client(self, server) -> None:
        for sequence in range(3):
            assert server.handle(request(f"a{sequence}")).ok
        assert server.handle(request("a3")).status == "rejected"
        # bob has a fresh bucket
        assert server.handle(request("b0", client_id="bob")).ok


class TestResultCache:
    def test_second_client_hits_the_cache(self, server) -> None:
        miss = server.handle(request("r1", client_id="alice"))
        hit = server.handle(request("r2", client_id="bob"))
        assert not miss.cached
        assert hit.cached
        assert hit.hits == miss.hits
        assert server.engine.queries == 1  # ranked exactly once
        assert hit.latency < miss.latency  # cached service cost is lower

    def test_distinct_parameters_do_not_collide(self, server) -> None:
        server.handle(request("r1", top_k=5))
        response = server.handle(request("r2", top_k=7))
        assert not response.cached

    def test_engine_rebuild_invalidates(self, server) -> None:
        server.handle(request("r1"))
        server.engine.rebuild(reason="retrain")
        response = server.handle(request("r2"))
        assert not response.cached
        assert server.engine.queries == 2

    def test_explicit_invalidate(self, server) -> None:
        server.handle(request("r1"))
        server.invalidate_cache()
        assert not server.handle(request("r2")).cached
        assert server.cache.stats()["query_cache_invalidations"] == 1.0


class TestObservability:
    def test_counters_and_latency_histogram(self, corpus) -> None:
        obs = Obs()
        engine = LocalSearchEngine(corpus, obs=obs)
        server = QueryServer(
            engine, clock=SimulatedClock(), obs=obs, rate=100.0, burst=100.0
        )
        server.handle(request("r1"))
        server.handle(request("r1"))  # replay
        server.handle(request("r2", client_id="bob"))  # cache hit
        registry = obs.registry
        assert registry.value("serving_requests_total") == 3.0
        assert registry.value("serving_replayed_total") == 1.0
        snapshot = registry.snapshot()
        assert "serving_latency_seconds" in snapshot["histograms"]
        assert snapshot["sources"]["serving"]["requests"] == 3.0
        assert snapshot["sources"]["serving"]["query_cache_hits"] == 1.0


class TestQueryPool:
    def test_deterministic_pool(self, corpus) -> None:
        first = build_query_pool(corpus, size=16, seed=3)
        second = build_query_pool(corpus, size=16, seed=3)
        assert first == second
        assert len(first) == 16
        assert build_query_pool(corpus, size=16, seed=4) != first

    def test_empty_corpus_rejected(self) -> None:
        with pytest.raises(SearchError):
            build_query_pool([])


class TestQueryLoad:
    def make_server(self, corpus) -> QueryServer:
        engine = LocalSearchEngine(corpus)
        return QueryServer(
            engine, clock=SimulatedClock(), rate=20.0, burst=10.0
        )

    def test_deterministic_replay(self, corpus) -> None:
        config = LoadConfig(requests=200, clients=4, seed=11)
        pool = build_query_pool(corpus, seed=11)
        first = run_query_load(self.make_server(corpus), pool, config)
        second = run_query_load(self.make_server(corpus), pool, config)
        assert first.summary() == second.summary()
        assert first.latencies == second.latencies

    def test_outcome_accounting_is_complete(self, corpus) -> None:
        config = LoadConfig(requests=300, clients=3, seed=5)
        pool = build_query_pool(corpus, seed=5)
        report = run_query_load(self.make_server(corpus), pool, config)
        assert report.requests == 300
        assert (
            report.ok + report.rejected + report.replayed + report.failed
            == report.requests
        )
        assert report.ok > 0
        assert report.replayed > 0  # retry_fraction exercises idempotency
        assert report.cache_hits > 0  # Zipf head repeats queries
        assert report.sim_elapsed > 0
        assert report.qps > 0
        summary = report.summary()
        assert (
            summary["latency_p50"]
            <= summary["latency_p95"]
            <= summary["latency_p99"]
        )

    def test_percentile_edges(self) -> None:
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.99) == 3.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 3.0
