"""Tests for the local search engine."""

from __future__ import annotations

import pytest

from repro.errors import SearchError
from repro.search.engine import LocalSearchEngine, RankingWeights

from tests.search.conftest import make_doc


class TestFiltering:
    def test_exact_topic_filter(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        docs = engine.filter("ROOT/databases", exact=True)
        assert {d.doc_id for d in docs} == {0, 1, 2}

    def test_vague_filter_includes_subtree(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        docs = engine.filter("ROOT/databases", exact=False)
        assert {d.doc_id for d in docs} == {0, 1, 2, 4}

    def test_no_topic_returns_all(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        assert len(engine.filter(None)) == len(corpus)


class TestCosineRanking:
    def test_best_match_first(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        hits = engine.search("source code release", topic=None)
        assert hits[0].document.doc_id == 1

    def test_stemming_applies_to_query(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        # 'recovery' stems to 'recoveri' matching documents 0/2/4
        hits = engine.search("recovery", topic=None, top_k=3)
        assert {h.document.doc_id for h in hits} <= {0, 2, 4}

    def test_empty_query_rejected(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        with pytest.raises(SearchError):
            engine.search("the and of")

    def test_top_k_respected(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        assert len(engine.search("recovery", top_k=2)) == 2


class TestCombinedRanking:
    def test_confidence_ranking(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        weights = RankingWeights(cosine=0.0, confidence=1.0)
        hits = engine.search("recovery", topic="ROOT/databases", weights=weights)
        # doc 0 has the highest confidence among databases docs
        assert hits[0].document.doc_id == 0
        confidences = [h.confidence for h in hits]
        assert confidences == sorted(confidences, reverse=True)

    def test_authority_ranking(self) -> None:
        # three docs pointing at one target -> target wins authority
        target = make_doc(10, {"data": 1}, url="http://t.example/")
        pointers = [
            make_doc(
                11 + i, {"data": 1}, out_urls=("http://t.example/",),
            )
            for i in range(3)
        ]
        engine = LocalSearchEngine([target, *pointers])
        weights = RankingWeights(cosine=0.0, authority=1.0)
        hits = engine.search("data", weights=weights)
        assert hits[0].document.doc_id == 10

    def test_combined_weights_blend(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        weights = RankingWeights(cosine=0.5, confidence=0.5)
        hits = engine.search("recovery", topic="ROOT/databases", weights=weights)
        for hit in hits:
            assert hit.score == pytest.approx(
                0.5 * hit.cosine + 0.5 * hit.confidence
            )

    def test_invalid_weights_rejected(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        with pytest.raises(SearchError):
            engine.search(
                "x", weights=RankingWeights(cosine=0.0)
            )
        with pytest.raises(SearchError):
            RankingWeights(cosine=-1.0).validate()

    def test_empty_candidate_set(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        assert engine.search("recovery", topic="ROOT/nothing") == []


class TestRedirectAuthority:
    def test_links_through_redirects_reach_their_target(self) -> None:
        # the target was fetched at a redirecting url: links carry the
        # *pre-redirect* url, the document is stored under final_url
        target = make_doc(
            10, {"data": 1},
            url="http://t.example/old",
            final_url="http://t.example/new",
        )
        pointers = [
            make_doc(11 + i, {"data": 1}, out_urls=("http://t.example/old",))
            for i in range(3)
        ]
        engine = LocalSearchEngine([target, *pointers])
        weights = RankingWeights(cosine=0.0, authority=1.0)
        hits = engine.search("data", weights=weights)
        # before the fix url_to_doc only knew final urls, so all three
        # edges were dropped and the graph had no authority signal
        assert hits[0].document.doc_id == 10
        assert hits[0].authority == 1.0

    def test_final_url_mapping_wins_on_collision(self) -> None:
        # doc 20's raw url collides with doc 21's final url; the
        # canonical (final-url) owner receives the edges
        loser = make_doc(
            20, {"data": 1},
            url="http://shared.example/page",
            final_url="http://elsewhere.example/page",
        )
        winner = make_doc(
            21, {"data": 1},
            url="http://w.example/start",
            final_url="http://shared.example/page",
        )
        pointer = make_doc(
            22, {"data": 1}, out_urls=("http://shared.example/page",)
        )
        engine = LocalSearchEngine([loser, winner, pointer])
        weights = RankingWeights(cosine=0.0, authority=1.0)
        hits = engine.search("data", weights=weights)
        assert hits[0].document.doc_id == 21


class TestFailedQueryAccounting:
    def test_failed_query_counts_and_accumulates_latency(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        with pytest.raises(SearchError):
            engine.search("the and of")
        assert engine.queries == 1
        assert engine.queries_failed == 1
        assert engine.query_seconds > 0.0
        engine.search("recovery")
        assert engine.queries == 2
        assert engine.queries_failed == 1

    def test_invalid_weights_also_counted(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        with pytest.raises(SearchError):
            engine.search("recovery", weights=RankingWeights(cosine=-1.0))
        assert engine.queries_failed == 1
        stats = engine.stats()
        assert stats["queries"] == 1.0
        assert stats["queries_failed"] == 1.0

    def test_failed_query_counter_reaches_registry(self, corpus) -> None:
        from repro.obs import Obs

        obs = Obs()
        engine = LocalSearchEngine(corpus, obs=obs)
        with pytest.raises(SearchError):
            engine.search("the and of")
        assert obs.registry.value("search_queries_total") == 1.0
        assert obs.registry.value("search_queries_failed_total") == 1.0


class TestMinMaxNormalize:
    def test_degenerate_range_maps_to_zero(self) -> None:
        from repro.search.engine import _min_max_normalize

        assert _min_max_normalize({1: 0.7, 2: 0.7}) == {1: 0.0, 2: 0.0}
        assert _min_max_normalize({1: 0.7}) == {1: 0.0}
        assert _min_max_normalize({}) == {}

    def test_single_candidate_gets_no_free_confidence(self, corpus) -> None:
        # one candidate in the filter: before the fix its normalised
        # confidence was 1.0 -- full marks for no discrimination at all
        engine = LocalSearchEngine(corpus)
        weights = RankingWeights(cosine=0.5, confidence=0.5)
        hits = engine.search(
            "sport", topic="ROOT/OTHERS", weights=weights
        )
        assert len(hits) == 1
        assert hits[0].confidence == 0.0
