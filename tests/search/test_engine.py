"""Tests for the local search engine."""

from __future__ import annotations

import pytest

from repro.errors import SearchError
from repro.search.engine import LocalSearchEngine, RankingWeights

from tests.search.conftest import make_doc


class TestFiltering:
    def test_exact_topic_filter(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        docs = engine.filter("ROOT/databases", exact=True)
        assert {d.doc_id for d in docs} == {0, 1, 2}

    def test_vague_filter_includes_subtree(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        docs = engine.filter("ROOT/databases", exact=False)
        assert {d.doc_id for d in docs} == {0, 1, 2, 4}

    def test_no_topic_returns_all(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        assert len(engine.filter(None)) == len(corpus)


class TestCosineRanking:
    def test_best_match_first(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        hits = engine.search("source code release", topic=None)
        assert hits[0].document.doc_id == 1

    def test_stemming_applies_to_query(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        # 'recovery' stems to 'recoveri' matching documents 0/2/4
        hits = engine.search("recovery", topic=None, top_k=3)
        assert {h.document.doc_id for h in hits} <= {0, 2, 4}

    def test_empty_query_rejected(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        with pytest.raises(SearchError):
            engine.search("the and of")

    def test_top_k_respected(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        assert len(engine.search("recovery", top_k=2)) == 2


class TestCombinedRanking:
    def test_confidence_ranking(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        weights = RankingWeights(cosine=0.0, confidence=1.0)
        hits = engine.search("recovery", topic="ROOT/databases", weights=weights)
        # doc 0 has the highest confidence among databases docs
        assert hits[0].document.doc_id == 0
        confidences = [h.confidence for h in hits]
        assert confidences == sorted(confidences, reverse=True)

    def test_authority_ranking(self) -> None:
        # three docs pointing at one target -> target wins authority
        target = make_doc(10, {"data": 1}, url="http://t.example/")
        pointers = [
            make_doc(
                11 + i, {"data": 1}, out_urls=("http://t.example/",),
            )
            for i in range(3)
        ]
        engine = LocalSearchEngine([target, *pointers])
        weights = RankingWeights(cosine=0.0, authority=1.0)
        hits = engine.search("data", weights=weights)
        assert hits[0].document.doc_id == 10

    def test_combined_weights_blend(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        weights = RankingWeights(cosine=0.5, confidence=0.5)
        hits = engine.search("recovery", topic="ROOT/databases", weights=weights)
        for hit in hits:
            assert hit.score == pytest.approx(
                0.5 * hit.cosine + 0.5 * hit.confidence
            )

    def test_invalid_weights_rejected(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        with pytest.raises(SearchError):
            engine.search(
                "x", weights=RankingWeights(cosine=0.0)
            )
        with pytest.raises(SearchError):
            RankingWeights(cosine=-1.0).validate()

    def test_empty_candidate_set(self, corpus) -> None:
        engine = LocalSearchEngine(corpus)
        assert engine.search("recovery", topic="ROOT/nothing") == []
