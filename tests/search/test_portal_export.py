"""Tests for static portal generation."""

from __future__ import annotations

from repro.core.ontology import TopicTree
from repro.search.portal_export import PortalExporter

from tests.search.conftest import make_doc


def exporter(cluster_subsections: bool = False) -> PortalExporter:
    tree = TopicTree.from_leaves(["databases", "ir"])
    docs = [
        make_doc(0, {"recoveri": 3}, topic="ROOT/databases", confidence=0.9),
        make_doc(1, {"queri": 3}, topic="ROOT/databases", confidence=0.4),
        make_doc(2, {"rank": 2}, topic="ROOT/ir", confidence=0.6),
        make_doc(3, {"sport": 2}, topic="ROOT/OTHERS", confidence=0.1),
    ]
    return PortalExporter(
        tree, docs, cluster_subsections=cluster_subsections
    )


class TestRender:
    def test_index_plus_one_page_per_leaf(self) -> None:
        pages = exporter().render()
        filenames = [page.filename for page in pages]
        assert filenames[0] == "index.html"
        assert "topic_databases.html" in filenames
        assert "topic_ir.html" in filenames
        assert len(pages) == 3

    def test_index_links_topics_with_counts(self) -> None:
        index = exporter().render()[0]
        assert 'href="topic_databases.html"' in index.html
        assert "(2 documents)" in index.html
        assert "(1 documents)" in index.html

    def test_topic_page_ranked_by_confidence(self) -> None:
        pages = exporter().render()
        databases = next(
            p for p in pages if p.filename == "topic_databases.html"
        )
        first = databases.html.find("site0.example")
        second = databases.html.find("site1.example")
        assert 0 < first < second  # doc 0 (0.9) before doc 1 (0.4)

    def test_others_documents_excluded(self) -> None:
        pages = exporter().render()
        combined = "".join(page.html for page in pages)
        assert "site3.example" not in combined

    def test_html_escaping(self) -> None:
        from tests.search.conftest import make_doc as md

        doc = md(9, {"x": 1}, topic="ROOT/databases")
        object.__setattr__  # noqa: B018 - documents are plain dataclasses
        doc.title = "<script>alert(1)</script>"
        tree = TopicTree.from_leaves(["databases"])
        page = PortalExporter(tree, [doc]).render()[1]
        assert "<script>alert" not in page.html
        assert "&lt;script&gt;" in page.html


class TestExport:
    def test_writes_files(self, tmp_path) -> None:
        paths = exporter().export(tmp_path / "portal")
        assert len(paths) == 3
        for path in paths:
            assert path.exists()
            assert path.read_text().startswith("<html>")

    def test_cluster_subsections_render(self, tmp_path) -> None:
        tree = TopicTree.from_leaves(["databases"])
        docs = (
            [make_doc(i, {"olap": 3, "cube": 2}, topic="ROOT/databases")
             for i in range(6)]
            + [make_doc(10 + i, {"crawl": 3, "spider": 2},
                        topic="ROOT/databases") for i in range(6)]
        )
        export = PortalExporter(tree, docs, cluster_subsections=True)
        page = export.render()[1]
        assert "suggested subclass" in page.html
