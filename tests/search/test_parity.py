"""Indexed-vs-brute rank parity: bit-identical results, not approx.

The serving tier's entire correctness story is that the WAND-backed
indexed path returns *exactly* what the brute-force reference returns:
same documents, same floating-point scores, same order.  This suite
sweeps topics (including exact/vague filters and a missing topic),
weight combinations, ``top_k`` edge cases and seeded random corpora,
comparing full ``(doc_id, score, cosine, confidence, authority)``
tuples with ``==``.
"""

from __future__ import annotations

import random

from repro.search.engine import LocalSearchEngine, RankingWeights
from repro.text.tokenizer import tokenize

from tests.search.conftest import make_doc

WORDS = [
    "recovery", "algorithm", "source", "code", "release", "log",
    "database", "transaction", "index", "portal", "crawler", "sport",
]

TOPICS = (
    "ROOT/databases",
    "ROOT/databases/subtopic",
    "ROOT/OTHERS",
)

WEIGHTS = [
    RankingWeights(cosine=1.0),
    RankingWeights(cosine=0.0, confidence=1.0),
    RankingWeights(cosine=0.0, authority=1.0),
    RankingWeights(cosine=0.5, confidence=0.5),
    RankingWeights(cosine=0.4, confidence=0.3, authority=0.3),
    RankingWeights(cosine=1.0, authority=1.0),
]

FILTERS = [
    (None, True),
    ("ROOT/databases", True),
    ("ROOT/databases", False),
    ("ROOT/nonexistent", True),
]

QUERIES = [
    "recovery",
    "source code release",
    "database transaction log recovery",
    "recovery zyzzyx",  # one matching + one unindexed term
]


def _stems() -> dict[str, str]:
    return {word: tokenize(word)[0].stem for word in WORDS}


def random_corpus(seed: int, size: int) -> list:
    """A seeded corpus whose terms are the stems of the query words."""
    rng = random.Random(seed)
    stems = sorted(_stems().values())
    documents = []
    for doc_id in range(size):
        terms = {
            term: rng.randint(1, 5)
            for term in rng.sample(stems, rng.randint(1, 6))
        }
        redirected = rng.random() < 0.3
        url = f"http://site{doc_id}.example/r{doc_id}.html"
        final_url = (
            f"http://site{doc_id}.example/p{doc_id}.html"
            if redirected
            else url
        )
        # link at *pre-redirect* urls so the redirect-aware authority
        # mapping is exercised, and at final urls for direct edges
        out_urls = []
        for _ in range(rng.randint(0, 3)):
            target = rng.randrange(size)
            attribute = "r" if rng.random() < 0.5 else "p"
            out_urls.append(
                f"http://site{target}.example/{attribute}{target}.html"
            )
        documents.append(
            make_doc(
                doc_id,
                terms,
                topic=rng.choice(TOPICS),
                confidence=round(rng.random(), 3),
                url=url,
                final_url=final_url,
                out_urls=tuple(out_urls),
            )
        )
    return documents


def hit_tuples(hits) -> list[tuple[int, float, float, float, float]]:
    return [
        (h.document.doc_id, h.score, h.cosine, h.confidence, h.authority)
        for h in hits
    ]


def assert_parity(engine: LocalSearchEngine, corpus_size: int) -> None:
    top_ks = [0, 1, 3, 10, corpus_size + 5]
    for query in QUERIES:
        query_vector = engine._query_vector(query)
        for topic, exact in FILTERS:
            candidates = engine.filter(topic, exact=exact)
            for weights in WEIGHTS:
                brute = None
                for top_k in top_ks:
                    indexed = engine.search(
                        query, topic=topic, exact=exact,
                        weights=weights, top_k=top_k,
                    )
                    if not candidates:
                        assert indexed == []
                        continue
                    if brute is None:
                        brute = engine.rank_all(
                            candidates, query_vector, weights
                        )
                    assert hit_tuples(indexed) == hit_tuples(
                        brute[:top_k]
                    ), (
                        f"query={query!r} topic={topic!r} exact={exact} "
                        f"weights={weights} top_k={top_k}"
                    )


class TestRankParity:
    def test_fixture_corpus(self, corpus) -> None:
        assert_parity(LocalSearchEngine(corpus), len(corpus))

    def test_random_corpora(self) -> None:
        for seed, size in ((1, 7), (2, 23), (3, 40)):
            engine = LocalSearchEngine(random_corpus(seed, size))
            assert_parity(engine, size)

    def test_unindexed_flag_matches_indexed(self, corpus) -> None:
        indexed = LocalSearchEngine(corpus, indexed=True)
        brute = LocalSearchEngine(corpus, indexed=False)
        for weights in WEIGHTS:
            for top_k in (1, 3, 10):
                assert hit_tuples(
                    indexed.search("recovery", weights=weights, top_k=top_k)
                ) == hit_tuples(
                    brute.search("recovery", weights=weights, top_k=top_k)
                )

    def test_negative_top_k_keeps_slice_semantics(self, corpus) -> None:
        # brute-path slicing semantics are preserved: top_k <= 0 never
        # enters the indexed path
        engine = LocalSearchEngine(corpus)
        assert engine.search("recovery", top_k=0) == []

    def test_parity_survives_rebuild(self) -> None:
        documents = random_corpus(5, 15)
        engine = LocalSearchEngine(documents[:10])
        assert_parity(engine, 10)
        engine.rebuild(documents, reason="growth")
        assert_parity(engine, 15)
