"""Tests for subclass suggestion, relevance feedback, and seed queries."""

from __future__ import annotations

import pytest

from repro.core import BingoEngine
from repro.errors import SearchError
from repro.search.clustering import suggest_subclasses
from repro.search.feedback import FeedbackSession
from repro.search.seed_queries import ExternalSearchEngine
from repro.web import PageRole, SyntheticWeb

from tests.core.conftest import fast_engine_config
from tests.search.conftest import make_doc


class TestSubclassSuggestion:
    def docs(self):
        a = [make_doc(i, {"olap": 3, "cube": 2}) for i in range(8)]
        b = [make_doc(10 + i, {"crawl": 3, "spider": 2}) for i in range(8)]
        return a + b

    def test_two_clear_subtopics_found(self) -> None:
        suggestions = suggest_subclasses(self.docs(), k=2, seed=0)
        assert len(suggestions) == 2
        sizes = sorted(len(s.documents) for s in suggestions)
        assert sizes == [8, 8]
        labels = " ".join(s.label for s in suggestions)
        assert "olap" in labels or "cube" in labels
        assert "crawl" in labels or "spider" in labels

    def test_auto_k_selection(self) -> None:
        suggestions = suggest_subclasses(self.docs(), k_range=(2, 3), seed=0)
        assert 2 <= len(suggestions) <= 3

    def test_too_few_documents_rejected(self) -> None:
        with pytest.raises(SearchError):
            suggest_subclasses([make_doc(0, {"x": 1})])

    def test_every_document_in_exactly_one_suggestion(self) -> None:
        docs = self.docs()
        suggestions = suggest_subclasses(docs, k=2, seed=0)
        seen = [d.doc_id for s in suggestions for d in s.documents]
        assert sorted(seen) == sorted(d.doc_id for d in docs)


class TestExternalSearchEngine:
    @pytest.fixture(scope="class")
    def web(self) -> SyntheticWeb:
        return SyntheticWeb.generate_expert(seed=5)

    def test_query_finds_topical_pages(self, web) -> None:
        engine = ExternalSearchEngine(web)
        hits = engine.query("aries recovery", top_k=10)
        assert len(hits) == 10
        on_topic = sum(hit.page.topic == "aries" for hit in hits)
        assert on_topic >= 5

    def test_select_seeds_filters_roles(self, web) -> None:
        engine = ExternalSearchEngine(web)
        seeds = engine.select_seeds("aries recovery algorithm", max_seeds=7)
        assert 1 <= len(seeds) <= 7
        for hit in seeds:
            assert hit.page.role in {
                PageRole.PAPER, PageRole.SLIDES, PageRole.HUB,
                PageRole.PUBLICATIONS, PageRole.HOMEPAGE,
            }

    def test_unfocused_top10_misses_needles(self, web) -> None:
        """The paper's starting point: a direct keyword query does not
        surface the needles in its top ranks."""
        engine = ExternalSearchEngine(web)
        hits = engine.query("aries recovery", top_k=10)
        needle_urls = web.needle_urls()
        assert sum(hit.url in needle_urls for hit in hits) <= 2


class TestFeedbackSession:
    @pytest.fixture(scope="class")
    def engine_and_docs(self, small_web):
        config = fast_engine_config()
        engine = BingoEngine.for_portal(small_web, config=config)
        engine.run(harvesting_fetch_budget=150)
        docs = engine.ranked_results("ROOT/databases")
        return engine, docs

    def test_retrain_without_feedback_rejected(self, engine_and_docs) -> None:
        engine, _ = engine_and_docs
        session = FeedbackSession(engine=engine, topic="ROOT/databases")
        with pytest.raises(SearchError):
            session.retrain()

    def test_feedback_round_trip(self, engine_and_docs) -> None:
        engine, docs = engine_and_docs
        assert len(docs) >= 4
        session = FeedbackSession(engine=engine, topic="ROOT/databases")
        session.mark_relevant(docs[0])
        session.mark_relevant(docs[1])
        session.mark_irrelevant(docs[-1])
        session.retrain()
        assert session.rounds == 1
        # marked-relevant docs entered the topic's training set
        training_urls = set(engine.training["ROOT/databases"])
        assert docs[0].final_url in training_urls
        assert docs[-1].final_url not in training_urls
        reranked = session.rerank(docs)
        reranked_ids = {d.doc_id for d in reranked}
        # reranking filters to docs the retrained model still accepts
        assert reranked_ids <= {d.doc_id for d in docs}
        # at least one explicitly relevant doc survives the retrained model
        assert reranked_ids & {docs[0].doc_id, docs[1].doc_id}

    def test_marks_are_exclusive(self, engine_and_docs) -> None:
        engine, docs = engine_and_docs
        session = FeedbackSession(engine=engine, topic="ROOT/databases")
        session.mark_relevant(docs[0])
        session.mark_irrelevant(docs[0])
        assert docs[0].doc_id not in session.relevant
        assert docs[0].doc_id in session.irrelevant
