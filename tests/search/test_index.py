"""Tests for the inverted index: compression, metadata, storage build."""

from __future__ import annotations

import random

import pytest

from repro.errors import SearchError
from repro.perf.topk import (
    PostingCursor,
    decode_doc_ids,
    encode_doc_ids,
    wand_topk,
)
from repro.search.engine import LocalSearchEngine
from repro.search.epoch import Epoch
from repro.search.index import InvertedIndex, Postings, QueryCache
from repro.storage import Database, sync_term_statistics

from tests.search.conftest import make_doc


class TestVarintCompression:
    def test_round_trip(self) -> None:
        rng = random.Random(7)
        ids = sorted(rng.sample(range(1_000_000), 500))
        assert decode_doc_ids(encode_doc_ids(ids)) == ids

    def test_empty_and_single(self) -> None:
        assert decode_doc_ids(encode_doc_ids([])) == []
        assert decode_doc_ids(encode_doc_ids([0])) == [0]
        assert decode_doc_ids(encode_doc_ids([12345])) == [12345]

    def test_rejects_non_increasing(self) -> None:
        with pytest.raises(ValueError):
            encode_doc_ids([3, 3])
        with pytest.raises(ValueError):
            encode_doc_ids([5, 2])
        with pytest.raises(ValueError):
            encode_doc_ids([-1])

    def test_compresses_dense_runs(self) -> None:
        ids = list(range(50_000, 51_000))
        assert len(encode_doc_ids(ids)) < 8 * len(ids)

    def test_truncated_varint_rejected(self) -> None:
        with pytest.raises(ValueError):
            decode_doc_ids(b"\x80")


class TestPostings:
    def test_lazy_decode_and_metadata(self) -> None:
        norms = {1: 2.0, 5: 1.0, 9: 4.0}
        postings = Postings([1, 5, 9], [1.0, 3.0, 2.0], norms)
        assert postings.count == 3
        assert postings.max_weight == 3.0
        # impacts: 1/2, 3/1, 2/4 -> max 3.0
        assert postings.max_impact == 3.0
        assert postings._doc_ids is None
        assert postings.doc_ids() == [1, 5, 9]
        assert list(postings.weights()) == [1.0, 3.0, 2.0]
        assert postings._doc_ids is not None

    def test_rejects_mismatched_runs(self) -> None:
        with pytest.raises(SearchError):
            Postings([1, 2], [1.0], {1: 1.0, 2: 1.0})
        with pytest.raises(SearchError):
            Postings([], [], {})


class TestWandKernel:
    def test_exhaustive_equivalence(self) -> None:
        """WAND against a brute-force evaluation of the same runs."""
        rng = random.Random(13)
        for trial in range(25):
            doc_count = rng.randint(1, 60)
            term_count = rng.randint(1, 5)
            runs = []
            scores = dict.fromkeys(range(doc_count), 0.0)
            for _ in range(term_count):
                ids = sorted(
                    rng.sample(range(doc_count), rng.randint(1, doc_count))
                )
                weight = rng.uniform(0.1, 2.0)
                for doc_id in ids:
                    scores[doc_id] += weight
                runs.append((ids, weight))
            matched = set()
            for ids, _weight in runs:
                matched.update(ids)
            k = rng.randint(1, doc_count + 2)
            cursors = [PostingCursor(ids, weight) for ids, weight in runs]
            result = wand_topk(
                cursors, k, lambda doc_id: scores[doc_id]
            )
            expected = sorted(
                ((scores[d], d) for d in sorted(matched)),
                key=lambda pair: (-pair[0], pair[1]),
            )[:k]
            assert (
                sorted(result, key=lambda pair: (-pair[0], pair[1]))
                == expected
            ), f"trial {trial}"

    def test_members_filter_and_k_zero(self) -> None:
        cursors = [PostingCursor([0, 1, 2], 1.0)]
        assert wand_topk(cursors, 0, lambda d: 1.0) == []
        cursors = [PostingCursor([0, 1, 2], 1.0)]
        result = wand_topk(cursors, 5, lambda d: float(d), members={1})
        assert result == [(1.0, 1)]


def _corpus():
    return [
        make_doc(0, {"recoveri": 5, "algorithm": 2}, confidence=0.9),
        make_doc(1, {"sourc": 3, "code": 3, "releas": 2}, confidence=0.4),
        make_doc(2, {"recoveri": 1, "log": 4}, confidence=0.7),
        make_doc(3, {"sport": 5, "goal": 3}, topic="ROOT/OTHERS"),
        make_doc(4, {"recoveri": 2, "sourc": 2}, confidence=0.6),
    ]


class TestInvertedIndex:
    def test_build_matches_engine_vectors(self) -> None:
        engine = LocalSearchEngine(_corpus())
        index = engine.index()
        assert len(index) > 0
        postings = index.postings("recoveri")
        assert postings is not None
        assert postings.doc_ids() == [0, 2, 4]
        for doc_id, weight in zip(postings.doc_ids(), postings.weights()):
            assert weight == engine._vectors[doc_id].get("recoveri")
        impacts = [
            engine._vectors[d].get("recoveri") / engine._vectors[d].norm
            for d in (0, 2, 4)
        ]
        assert postings.max_impact == max(impacts)
        assert index.postings("unknown-term") is None

    def test_matching_ids(self) -> None:
        engine = LocalSearchEngine(_corpus())
        index = engine.index()
        assert index.matching_ids(["recoveri", "code"]) == {0, 1, 2, 4}
        assert index.matching_ids(["nope"]) == set()

    def test_from_database_equivalent_to_in_memory(self) -> None:
        corpus = _corpus()
        database = Database()
        rows = [
            {"doc_id": d.doc_id, "term": term, "tf": int(tf)}
            for d in corpus
            for term, tf in sorted(d.counts["term"].items())
        ]
        database.table("terms").bulk_insert(rows)
        from_db = InvertedIndex.from_database(database)
        engine = LocalSearchEngine(corpus)
        in_memory = engine.index()
        assert from_db.terms() == in_memory.terms()
        for term in in_memory.terms():
            a = from_db.postings(term)
            b = in_memory.postings(term)
            assert a.doc_ids() == b.doc_ids()
            assert list(a.weights()) == list(b.weights())
            assert a.max_impact == b.max_impact

    def test_stats_are_snake_case_floats(self) -> None:
        engine = LocalSearchEngine(_corpus())
        stats = engine.index().stats()
        assert stats["index_documents"] == 5.0
        assert stats["index_postings"] > 0
        assert stats["index_compressed_bytes"] > 0
        assert all(isinstance(v, float) for v in stats.values())


class TestQueryCache:
    def test_hit_miss_and_lru(self) -> None:
        epoch = Epoch.initial(1)
        cache = QueryCache(maxsize=2)
        assert cache.get(epoch, "a") is None
        cache.put(epoch, "a", 1)
        cache.put(epoch, "b", 2)
        assert cache.get(epoch, "a") == 1
        cache.put(epoch, "c", 3)  # evicts b (least recently used)
        assert cache.get(epoch, "b") is None
        assert cache.get(epoch, "a") == 1
        assert cache.get(epoch, "c") == 3
        assert cache.stats()["query_cache_entries"] == 2.0

    def test_epoch_advance_makes_entries_unreachable(self) -> None:
        epoch = Epoch.initial(1)
        cache = QueryCache(maxsize=4)
        cache.put(epoch, "a", 1)
        advanced = epoch.advance("rebuild")
        assert cache.get(advanced, "a") is None
        assert cache.get(epoch, "a") == 1  # old epoch still addressable

    def test_invalidate(self) -> None:
        epoch = Epoch.initial(1)
        cache = QueryCache()
        cache.put(epoch, "a", 1)
        cache.invalidate()
        assert cache.get(epoch, "a") is None
        assert cache.stats()["query_cache_invalidations"] == 1.0

    def test_zero_capacity(self) -> None:
        epoch = Epoch.initial(1)
        cache = QueryCache(maxsize=0)
        cache.put(epoch, "a", 1)
        assert cache.get(epoch, "a") is None


class TestEpochLifecycle:
    def test_engine_epoch_advances_on_rebuild(self) -> None:
        engine = LocalSearchEngine(_corpus())
        epoch = engine.epoch
        before = [
            (h.document.doc_id, h.score) for h in engine.search("recovery")
        ]
        assert engine.epoch == epoch
        rebuilt = engine.rebuild(reason="retrain")
        assert rebuilt.ordinal > epoch.ordinal
        assert rebuilt.generation == epoch.generation + 1
        assert rebuilt.reason == "retrain"
        # same corpus, fresh index: results are unchanged
        after = [
            (h.document.doc_id, h.score) for h in engine.search("recovery")
        ]
        assert after == before and before

    def test_deprecated_shims_are_gone(self) -> None:
        # the one-release cache_token / refresh() bridges from the
        # Epoch migration were removed; epoch is the only token now
        engine = LocalSearchEngine(_corpus())
        assert not hasattr(engine, "cache_token")
        assert not hasattr(engine, "refresh")
        assert engine.epoch.token == (
            engine.epoch.snapshot_version, engine.epoch.generation
        )


class TestTermStatisticsSync:
    def test_sync_writes_snapshot_rows(self) -> None:
        engine = LocalSearchEngine(_corpus())
        database = Database()
        count = sync_term_statistics(database, engine.vectorizer)
        relation = database.table("term_statistics")
        assert count == len(relation) > 0
        row = relation.get("recoveri")
        assert row["df"] == 3
        assert row["idf"] == engine.vectorizer.statistics.idf("recoveri")
        # re-sync replaces, not duplicates
        assert sync_term_statistics(database, engine.vectorizer) == count
        assert len(relation) == count
