"""Fixtures: hand-built crawled documents for search tests."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.crawler import CrawledDocument


def make_doc(
    doc_id: int,
    terms: dict[str, int],
    topic: str = "ROOT/databases",
    confidence: float = 0.5,
    url: str | None = None,
    final_url: str | None = None,
    out_urls: tuple[str, ...] = (),
    host: str | None = None,
) -> CrawledDocument:
    url = url or f"http://site{doc_id}.example/p{doc_id}.html"
    return CrawledDocument(
        doc_id=doc_id,
        url=url,
        final_url=final_url or url,
        page_id=doc_id,
        host=host or f"site{doc_id}.example",
        ip=f"10.0.0.{doc_id}",
        mime="text/html",
        size=1000 + doc_id,
        title=f"doc {doc_id}",
        depth=1,
        topic=topic,
        confidence=confidence,
        counts={"term": Counter(terms)},
        out_urls=list(out_urls),
        fetched_at=float(doc_id),
    )


@pytest.fixture()
def corpus() -> list[CrawledDocument]:
    return [
        make_doc(0, {"recoveri": 5, "algorithm": 2}, confidence=0.9),
        make_doc(1, {"sourc": 3, "code": 3, "releas": 2}, confidence=0.4),
        make_doc(2, {"recoveri": 1, "log": 4}, confidence=0.7),
        make_doc(
            3, {"sport": 5, "goal": 3},
            topic="ROOT/OTHERS", confidence=0.1,
        ),
        make_doc(
            4, {"recoveri": 2, "sourc": 2, "code": 1},
            topic="ROOT/databases/subtopic", confidence=0.6,
        ),
    ]
