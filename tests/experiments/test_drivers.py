"""Smoke tests for the experiment drivers (small budgets).

The *shape* assertions (who wins, by how much) live in ``benchmarks/``;
these tests check that each driver runs end to end and produces
structurally sound results at reduced scale.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    run_archetype_ablation,
    run_feature_space_ablation,
    run_focus_ablation,
    run_negatives_ablation,
)
from repro.experiments.expert import run_expert_experiment
from repro.experiments.featsel import run_feature_selection_experiment
from repro.experiments.meta_bench import run_meta_experiment
from repro.experiments.portal import run_portal_experiment


class TestPortalDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_portal_experiment(short_budget=200, long_budget=700)

    def test_checkpoints_ordered(self, result) -> None:
        assert (
            result.long.table1["visited_urls"]
            >= result.short.table1["visited_urls"]
        )
        assert (
            result.long.table1["stored_pages"]
            >= result.short.table1["stored_pages"]
        )

    def test_tables_render(self, result) -> None:
        for table in (result.table1(), result.table2(), result.table3()):
            text = table.render()
            assert "Table" in text

    def test_scores_within_registry_bounds(self, result) -> None:
        for checkpoint in (result.short, result.long):
            for row in checkpoint.scores:
                assert 0 <= row.found_top <= result.top_k
                assert 0 <= row.found_all <= result.registry_size

    def test_invalid_budgets_rejected(self) -> None:
        with pytest.raises(ValueError):
            run_portal_experiment(short_budget=500, long_budget=400)


class TestExpertDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_expert_experiment(crawl_fetch_budget=400)

    def test_seed_selection_bounded(self, result) -> None:
        assert 1 <= len(result.seed_hits) <= 7

    def test_figures_render(self, result) -> None:
        assert "Figure 4" in result.figure4().render()
        assert "Figure 5" in result.figure5().render()

    def test_top10_is_ranked(self, result) -> None:
        scores = [score for score, _url in result.top10]
        assert scores == sorted(scores, reverse=True)
        assert len(result.top10) <= 10

    def test_needle_bookkeeping_consistent(self, result) -> None:
        in_top10 = sum(
            url in result.needle_urls for _s, url in result.top10
        )
        assert in_top10 == result.needles_in_top10


class TestSmallDrivers:
    def test_meta_experiment_rows(self) -> None:
        result = run_meta_experiment(seeds=(23,), test_per_class=40)
        names = [name for name, *_ in result.rows]
        assert "meta: unanimous" in names
        assert "meta: majority" in names
        assert "meta: xi-alpha weighted" in names
        for _name, precision, recall, abstain in result.rows:
            assert 0.0 <= precision <= 1.0
            assert 0.0 <= recall <= 1.0
            assert 0.0 <= abstain <= 1.0

    def test_feature_selection_rows(self) -> None:
        result = run_feature_selection_experiment(
            budgets=(10, 50), train_per_class=15, test_per_class=30
        )
        assert set(result.accuracy) == {"MI", "tf", "random"}
        for accuracies in result.accuracy.values():
            assert len(accuracies) == 2
            assert all(0.0 <= a <= 1.0 for a in accuracies)

    def test_focus_ablation_variants(self) -> None:
        result = run_focus_ablation(budget=120)
        assert len(result.rows) == 4
        table = result.table().render()
        assert "tunnelling" in table

    def test_negatives_ablation_rows(self) -> None:
        result = run_negatives_ablation(test_per_class=40)
        assert len(result.rows) == 2

    def test_feature_space_ablation_rows(self) -> None:
        result = run_feature_space_ablation(
            train_per_class=12, test_per_class=25
        )
        spaces = [name for name, *_ in result.rows]
        assert "terms" in spaces
        assert "term pairs" in spaces
        assert "anchors" in spaces

    def test_archetype_ablation_rows(self) -> None:
        result = run_archetype_ablation(seeds=(59,), rounds=2)
        assert len(result.rows) == 2
        assert result.purity_of("threshold on (paper 3.2)") >= 0.0
