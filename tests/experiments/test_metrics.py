"""Tests for the shared evaluation metrics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.experiments.metrics import BinaryCounts, ranking_precision_at_k


class TestBinaryCounts:
    def test_basic_confusion(self) -> None:
        counts = BinaryCounts()
        counts.update(1, 1)   # tp
        counts.update(1, -1)  # fp
        counts.update(-1, 1)  # fn
        counts.update(-1, -1)  # tn
        assert (counts.tp, counts.fp, counts.fn, counts.tn) == (1, 1, 1, 1)
        assert counts.precision == 0.5
        assert counts.recall == 0.5
        assert counts.accuracy == 0.5
        assert counts.f1 == pytest.approx(0.5)

    def test_abstention_costs_recall_not_precision(self) -> None:
        counts = BinaryCounts()
        counts.update(0, 1)
        counts.update(1, 1)
        assert counts.abstained == 1
        assert counts.recall == 0.5
        assert counts.precision == 1.0
        assert counts.abstain_rate == 0.5

    def test_degenerate_all_negative_is_zero_precision(self) -> None:
        counts = BinaryCounts()
        counts.update(-1, 1)
        counts.update(-1, -1)
        assert counts.precision == 0.0

    def test_empty_counts(self) -> None:
        counts = BinaryCounts()
        assert counts.accuracy == 0.0
        assert counts.f1 == 0.0

    @given(st.lists(st.tuples(st.sampled_from([1, -1, 0]),
                              st.sampled_from([1, -1])), max_size=60))
    def test_counts_partition_total(self, decisions) -> None:
        counts = BinaryCounts()
        for predicted, actual in decisions:
            counts.update(predicted, actual)
        assert counts.total == len(decisions)
        assert 0.0 <= counts.precision <= 1.0
        assert 0.0 <= counts.recall <= 1.0
        assert 0.0 <= counts.f1 <= 1.0


class TestRankingPrecision:
    def test_perfect_ranking(self) -> None:
        scored = [(0.9, True), (0.8, True), (0.1, False), (0.0, False)]
        assert ranking_precision_at_k(scored) == 1.0

    def test_inverted_ranking(self) -> None:
        scored = [(0.9, False), (0.8, False), (0.1, True), (0.0, True)]
        assert ranking_precision_at_k(scored) == 0.0

    def test_explicit_k(self) -> None:
        scored = [(0.9, True), (0.8, False), (0.7, True)]
        assert ranking_precision_at_k(scored, k=1) == 1.0
        assert ranking_precision_at_k(scored, k=2) == 0.5

    def test_no_relevant_items(self) -> None:
        assert ranking_precision_at_k([(0.5, False)], k=None) == 1.0

    def test_empty(self) -> None:
        assert ranking_precision_at_k([], k=3) == 0.0

    @given(st.lists(st.tuples(st.floats(0, 1, allow_nan=False),
                              st.booleans()), max_size=40))
    def test_bounded(self, scored) -> None:
        assert 0.0 <= ranking_precision_at_k(scored) <= 1.0
