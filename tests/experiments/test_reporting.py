"""Tests for experiment table rendering."""

from __future__ import annotations

import pytest

from repro.experiments.reporting import ExperimentTable


def test_render_alignment_and_content() -> None:
    table = ExperimentTable("Title", ["Property", "Value"], note="a note")
    table.add_row(["Visited URLs", 100_209])
    table.add_row(["Precision", 0.953])
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert "a note" in lines[1]
    assert "Property" in lines[2]
    assert "100,209" in text
    assert "0.953" in text


def test_row_width_mismatch_rejected() -> None:
    table = ExperimentTable("T", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row([1])


def test_float_formatting_trims_zeros() -> None:
    table = ExperimentTable("T", ["x"])
    table.add_row([0.5])
    assert "0.5" in table.render()
    assert "0.500" not in table.render()


def test_empty_table_renders_headers() -> None:
    table = ExperimentTable("T", ["only", "headers"])
    text = table.render()
    assert "only" in text
    assert "headers" in text
