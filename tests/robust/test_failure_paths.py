"""Deterministic-seed tests for every fetch failure path.

Each test forces one failure mode (timeout, 5xx, DNS failure, redirect
loop, 404, locked host) and asserts the crawler's accounting, the retry
scheduling and the final host state.
"""

from __future__ import annotations

import pytest

from repro.core import FocusedCrawler
from repro.core.crawler import SOFT, CrawlStats, PhaseSettings
from repro.errors import DNSError
from repro.storage.bulkloader import BulkLoader
from repro.storage.database import Database
from repro.web.urls import parse_url

from tests.core.conftest import fast_engine_config
from tests.core.test_crawler import make_trained_classifier


def make_crawler(web, **overrides):
    config = fast_engine_config(**overrides)
    classifier = make_trained_classifier(web, config)
    database = Database(validate=True)
    loader = BulkLoader(database, batch_size=10)
    crawler = FocusedCrawler(web, classifier, config, loader=loader)
    return crawler, database


def failing_host(web, attribute: str):
    """Force one university host to always fail; returns (host, undo)."""
    host = next(h for h in web.hosts.values() if h.name.startswith("u"))
    old = getattr(host, attribute)
    setattr(host, attribute, 1.0)
    return host, lambda: setattr(host, attribute, old)


def host_urls(web, host, count: int) -> list[str]:
    return [p.url for p in web.pages if p.host == host.name][:count]


def crawl_log_rows(database, url: str) -> list[dict]:
    return sorted(
        (row for row in database["crawl_log"].scan() if row["url"] == url),
        key=lambda row: row["at"],
    )


SETTINGS = PhaseSettings(name="t", focus=SOFT, fetch_budget=60)


class TestTimeoutRetries:
    @pytest.fixture(scope="class")
    def timeout_crawl(self, small_web):
        host, undo = failing_host(small_web, "timeout_rate")
        crawler, database = make_crawler(small_web, max_retries=3)
        try:
            urls = host_urls(small_web, host, 4)
            crawler.seed(urls, topic="ROOT/databases", priority=10.0)
            stats = crawler.crawl(SETTINGS)
        finally:
            undo()
        return crawler, database, stats, host, urls

    def test_failures_and_retries_counted(self, timeout_crawl) -> None:
        _, _, stats, _, urls = timeout_crawl
        assert stats.fetch_errors > 0
        assert 0 < stats.retries <= 3 * len(urls)
        assert stats.stored_pages == 0

    def test_every_retry_waited_for_backoff(self, timeout_crawl) -> None:
        crawler, database, _, _, _ = timeout_crawl
        policy = crawler.retry_policy
        assert crawler.retry_log, "retries were scheduled"
        for record in crawler.retry_log:
            delay = record["not_before"] - record["scheduled_at"]
            attempt = record["attempt"]  # 1-based
            raw = min(
                policy.base_delay * policy.multiplier ** (attempt - 1),
                policy.max_delay,
            )
            assert raw * (1 - policy.jitter) <= delay <= raw * (1 + policy.jitter)
            # the actual re-fetch (crawl_log row `attempt`) came no
            # earlier than the scheduled not-before time
            rows = crawl_log_rows(database, record["url"])
            if attempt < len(rows):
                assert rows[attempt]["at"] >= record["not_before"]

    def test_host_ends_quarantined(self, timeout_crawl) -> None:
        crawler, _, _, host, _ = timeout_crawl
        state = crawler._host_state(host.name)
        assert state.bad
        assert state.trips >= 1

    def test_no_retry_fragment_urls(self, timeout_crawl) -> None:
        """The attempt number is a QueueEntry field now, not a synthetic
        ``#retryN`` fragment smuggled through the URL."""
        crawler, database, _, _, _ = timeout_crawl
        assert all("#retry" not in row["url"]
                   for row in database["crawl_log"].scan())
        assert all("#retry" not in url for url in crawler.frontier._seen_urls)

    def test_quarantine_deferrals_accounted(self, timeout_crawl) -> None:
        _, _, stats, _, urls = timeout_crawl
        # once the breaker opened, the remaining entries were deferred
        # and eventually dropped, never fetched through the quarantine
        assert stats.quarantine_deferred + stats.bad_host_skipped > 0


class TestHttpErrorRetries:
    def test_server_errors_are_retried_then_give_up(self, small_web) -> None:
        host, undo = failing_host(small_web, "error_rate")
        crawler, database = make_crawler(small_web, max_retries=2)
        try:
            urls = host_urls(small_web, host, 3)
            crawler.seed(urls, topic="ROOT/databases", priority=10.0)
            stats = crawler.crawl(SETTINGS)
        finally:
            undo()
        assert stats.fetch_errors > 0
        assert stats.retries > 0
        assert crawler._host_state(host.name).bad
        # a retried URL really was fetched again (duplicate stage 2 was
        # told to forget the failed fetch)
        refetched = [u for u in urls if len(crawl_log_rows(database, u)) > 1]
        assert refetched

    def test_retry_budget_caps_phase_retries(self, small_web) -> None:
        host, undo = failing_host(small_web, "error_rate")
        crawler, _ = make_crawler(small_web, max_retries=3, retry_budget=1)
        try:
            crawler.seed(
                host_urls(small_web, host, 4),
                topic="ROOT/databases", priority=10.0,
            )
            stats = crawler.crawl(SETTINGS)
        finally:
            undo()
        assert stats.retries <= 1


class TestDnsFailurePath:
    def test_dns_error_schedules_backoff_retry(self, small_web) -> None:
        crawler, _ = make_crawler(small_web)
        university = next(
            h for h in small_web.hosts.values() if h.name.startswith("u")
        )
        url = host_urls(small_web, university, 1)[0]
        host = parse_url(url).host

        def always_fail(hostname):
            raise DNSError(f"injected failure for {hostname}")

        crawler.resolver.resolve = always_fail
        stats = CrawlStats()
        from repro.core.frontier import QueueEntry

        crawler._visit(
            QueueEntry(url=url, topic="ROOT/databases", priority=1.0, depth=0),
            SETTINGS, stats,
        )
        assert stats.dns_failures == 1
        assert stats.visited_urls == 0, "no fetch happened"
        assert crawler._host_state(host).failures == 1
        assert len(crawler.retry_log) == 1
        assert crawler.frontier.next_ready_at() == pytest.approx(
            crawler.retry_log[0]["not_before"]
        )


class TestNonRetryableResponses:
    def visit(self, crawler, url: str) -> CrawlStats:
        from repro.core.frontier import QueueEntry

        stats = CrawlStats()
        crawler._visit(
            QueueEntry(url=url, topic="ROOT/databases", priority=1.0, depth=0),
            SETTINGS, stats,
        )
        return stats

    def test_not_found_is_not_a_host_fault(self, small_web) -> None:
        crawler, _ = make_crawler(small_web)
        host = next(
            h for h in small_web.hosts.values()
            if h.name.startswith("u") and not h.locked
        )
        stats = self.visit(crawler, f"http://{host.name}/no-such-page.html")
        assert stats.not_found == 1
        assert stats.fetch_errors == 0
        assert stats.visited_urls == 1
        assert not crawler.retry_log
        state = crawler._host_state(host.name)
        assert state.failures == 0 and not state.slow

    def test_redirect_loop_counted_not_retried(self, small_web) -> None:
        crawler, _ = make_crawler(small_web)
        alias = next(
            url for url, (_pid, kind) in small_web.server.url_map.items()
            if kind == "alias"
        )
        old_max = small_web.server.max_redirects
        small_web.server.max_redirects = 0
        try:
            stats = self.visit(crawler, alias)
        finally:
            small_web.server.max_redirects = old_max
        assert stats.redirect_loops == 1
        assert stats.fetch_errors == 0
        assert not crawler.retry_log
        assert not crawler._host_state(parse_url(alias).host).slow

    def test_locked_host_counted_as_locked(self, small_web) -> None:
        crawler, _ = make_crawler(small_web)
        host = next(h for h in small_web.hosts.values() if not h.locked)
        url = host_urls(small_web, host, 1)[0]
        host.locked = True
        try:
            stats = self.visit(crawler, url)
        finally:
            host.locked = False
        assert stats.locked_skipped == 1
        assert stats.fetch_errors == 0

    def test_locked_domain_skipped_without_fetch(self, small_web) -> None:
        host = next(h for h in small_web.hosts.values() if not h.locked)
        url = host_urls(small_web, host, 1)[0]
        domain = parse_url(url).domain
        crawler, _ = make_crawler(small_web, locked_domains=(domain,))
        stats = self.visit(crawler, url)
        assert stats.locked_skipped == 1
        assert stats.visited_urls == 0


class TestSlowHostRegression:
    """The seed code set the ``slow`` flag but never read it; slow hosts
    must now feel it in priority and politeness."""

    def test_slow_host_cooldown_spaces_fetches(self, small_web) -> None:
        host, undo = failing_host(small_web, "timeout_rate")
        crawler, database = make_crawler(
            small_web,
            max_retries=3,
            retry_base_delay=1.0,
            retry_jitter=0.0,
            slow_host_cooldown=50.0,
        )
        try:
            url = host_urls(small_web, host, 1)[0]
            crawler.seed([url], topic="ROOT/databases", priority=10.0)
            stats = crawler.crawl(SETTINGS)
        finally:
            undo()
        assert stats.slow_deferred >= 1, "slow flag gated admission"
        rows = crawl_log_rows(database, url)
        assert len(rows) >= 3
        # the second retry hit the slow-host cool-down: >= 50 simulated
        # seconds passed although the backoff alone asked for ~2
        assert rows[2]["at"] - rows[1]["at"] >= 50.0

    def test_links_into_slow_hosts_are_demoted(self, small_web) -> None:
        crawler, _ = make_crawler(small_web)
        factor = crawler.config.slow_priority_factor
        breaker = crawler._hosts.get("slow.example.edu")
        breaker.record_failure(0.0)
        assert crawler._hosts.priority_factor("slow.example.edu") == factor
        assert crawler._hosts.priority_factor("healthy.example.edu") == 1.0
