"""Fault-injection harness tests: burst failures, flaky DNS, recovery.

The acceptance bar: a host taken down by an injected burst window must
end up quarantined, get re-probed after probation, and *recover* once
the window closes -- and no retry may hit the network before its
backoff elapsed.
"""

from __future__ import annotations

import pytest

from repro.core import FocusedCrawler
from repro.core.crawler import SOFT, PhaseSettings
from repro.errors import DNSError
from repro.robust import FaultInjector, FaultWindow
from repro.storage.bulkloader import BulkLoader
from repro.storage.database import Database
from repro.web.clock import SimulatedClock
from repro.web.dns import CachingResolver, DnsServer, DnsZone

from tests.core.conftest import fast_engine_config
from tests.core.test_crawler import make_trained_classifier


class TestFaultWindow:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(start=0.0, end=10.0, kind="meteor"),
            dict(start=10.0, end=10.0),
            dict(start=0.0, end=10.0, rate=1.5),
            dict(start=0.0, end=10.0, host_fraction=0.0),
        ],
    )
    def test_bad_windows_rejected(self, kwargs) -> None:
        with pytest.raises(ValueError):
            FaultWindow(**kwargs).validate()

    def test_fires_only_inside_window(self) -> None:
        clock = SimulatedClock()
        injector = FaultInjector(
            (FaultWindow(10.0, 20.0, kind="timeout", hosts=("h1",)),),
            clock=clock,
        )
        assert injector.fetch_fault("h1", "http://h1/", 1) is None
        clock.now = 10.0
        assert injector.fetch_fault("h1", "http://h1/", 1) == "timeout"
        assert injector.fetch_fault("other", "http://other/", 1) is None
        clock.now = 20.0
        assert injector.fetch_fault("h1", "http://h1/", 1) is None
        assert injector.injected["timeout"] == 1

    def test_decisions_are_deterministic(self) -> None:
        clock = SimulatedClock(now=5.0)
        window = FaultWindow(0.0, 10.0, kind="http_error", rate=0.5)
        a = FaultInjector((window,), seed=3, clock=clock)
        b = FaultInjector((window,), seed=3, clock=clock)
        decisions_a = [a.fetch_fault("h", f"http://h/{i}", 1) for i in range(50)]
        decisions_b = [b.fetch_fault("h", f"http://h/{i}", 1) for i in range(50)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)


class TestFlakyDns:
    def make_resolver(self, windows, servers=2):
        zone = DnsZone()
        zone.register("host.example.edu", "10.0.0.1")
        clock = SimulatedClock()
        dns_servers = [
            DnsServer(zone, name=f"dns{i}") for i in range(servers)
        ]
        injector = FaultInjector(windows, clock=clock)
        for server in dns_servers:
            server.faults = injector
        return CachingResolver(dns_servers, clock), clock

    def test_total_dns_outage_fails_resolution(self) -> None:
        resolver, clock = self.make_resolver(
            (FaultWindow(0.0, 10.0, kind="dns"),)
        )
        with pytest.raises(DNSError):
            resolver.resolve("host.example.edu")
        assert resolver.failures == 1

    def test_resolution_recovers_after_window(self) -> None:
        resolver, clock = self.make_resolver(
            (FaultWindow(0.0, 10.0, kind="dns"),)
        )
        with pytest.raises(DNSError):
            resolver.resolve("host.example.edu")
        clock.now = 10.0
        result = resolver.resolve("host.example.edu")
        assert result.ip == "10.0.0.1"

    def test_partial_outage_resends_to_alternative_server(self) -> None:
        # only dns0 is down: the resolver's resend strategy must still
        # resolve every query, paying timeout latency when it starts there
        resolver, _clock = self.make_resolver(
            (FaultWindow(0.0, 1000.0, kind="dns", hosts=("dns0",)),),
            servers=2,
        )
        for i in range(12):
            zone = resolver.servers[0].zone
            zone.register(f"h{i}.example.edu", f"10.0.1.{i}")
            assert resolver.resolve(f"h{i}.example.edu").ip == f"10.0.1.{i}"
        assert resolver.failures == 0
        assert resolver.timeouts > 0, "some queries started at dns0"


class TestBurstFailureCrawl:
    @pytest.fixture(scope="class")
    def burst_crawl(self, small_web):
        host = next(
            h for h in small_web.hosts.values() if h.name.startswith("u")
        )
        config = fast_engine_config(
            max_retries=2,
            retry_base_delay=2.0,
            retry_jitter=0.0,
            host_quarantine=30.0,
            max_host_deferrals=10,
            fault_windows=(
                FaultWindow(0.0, 40.0, kind="timeout", hosts=(host.name,)),
            ),
        )
        classifier = make_trained_classifier(small_web, config)
        database = Database(validate=True)
        loader = BulkLoader(database, batch_size=10)
        crawler = FocusedCrawler(small_web, classifier, config, loader=loader)
        urls = [p.url for p in small_web.pages if p.host == host.name][:5]
        crawler.seed(urls, topic="ROOT/databases", priority=10.0)
        settings = PhaseSettings(name="t", focus=SOFT, fetch_budget=80)
        stats = crawler.crawl(settings)
        return crawler, database, stats, host

    def test_faults_were_injected(self, burst_crawl) -> None:
        crawler, _, _, _ = burst_crawl
        assert crawler.faults is not None
        assert crawler.faults.injected["timeout"] > 0

    def test_host_was_quarantined_and_reprobed(self, burst_crawl) -> None:
        crawler, _, stats, host = burst_crawl
        state = crawler._host_state(host.name)
        assert state.trips >= 1, "burst tripped the breaker"
        assert state.probes >= 1, "quarantine ended in a probation probe"
        assert stats.quarantine_deferred > 0

    def test_host_recovered_after_window(self, burst_crawl) -> None:
        crawler, _, stats, host = burst_crawl
        state = crawler._host_state(host.name)
        assert not state.bad, "probe after the window closed the breaker"
        stored_from_host = [
            d for d in crawler.documents if d.host == host.name
        ]
        assert stored_from_host, "pages fetched once the burst passed"

    def test_no_retry_bypassed_backoff(self, burst_crawl) -> None:
        crawler, database, _, _ = burst_crawl
        rows_by_url: dict[str, list[dict]] = {}
        for row in database["crawl_log"].scan():
            rows_by_url.setdefault(row["url"], []).append(row)
        for rows in rows_by_url.values():
            rows.sort(key=lambda row: row["at"])
        assert crawler.retry_log
        for record in crawler.retry_log:
            rows = rows_by_url.get(record["url"], [])
            attempt = record["attempt"]
            if attempt < len(rows):
                assert rows[attempt]["at"] >= record["not_before"], (
                    f"retry {attempt} of {record['url']} hit the network "
                    "before its backoff elapsed"
                )
