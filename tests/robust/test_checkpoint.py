"""Checkpoint/resume: an interrupted crawl must land on the same
Table-1 counters as an uninterrupted one.

Three crawlers run against three *identically generated* Webs (the
generator is seed-deterministic, and a crawl mutates server-side attempt
counters, so each run gets a fresh copy):

* baseline -- runs the phase to a 120-fetch budget in one go;
* interrupted -- same setup, checkpointing every 25 visits, "killed"
  after 60 visits (the work past the last checkpoint is lost);
* resumed -- a fresh crawler restored from the checkpoint directory
  finishes the phase to the same 120-fetch budget.

Baseline and resumed must agree exactly on every integer counter, the
stored documents and the host table.
"""

from __future__ import annotations

import json

import pytest

from repro.core import FocusedCrawler
from repro.core.crawler import SOFT, PhaseSettings
from repro.robust import (
    Checkpointer,
    load_checkpoint,
    restore_crawler,
    save_checkpoint,
    snapshot_crawler,
)
from repro.storage.bulkloader import BulkLoader
from repro.storage.database import Database
from repro.web import SyntheticWeb

from tests.conftest import small_web_config
from tests.core.conftest import fast_engine_config
from tests.core.test_crawler import make_trained_classifier

BUDGET = 120
KILL_AFTER = 60
EVERY = 25


def build_crawler():
    web = SyntheticWeb.generate(small_web_config())
    config = fast_engine_config(max_retries=2)
    classifier = make_trained_classifier(web, config)
    database = Database(validate=True)
    loader = BulkLoader(database, batch_size=10)
    crawler = FocusedCrawler(web, classifier, config, loader=loader)
    crawler.seed(web.seed_homepages(3), topic="ROOT/databases", priority=10.0)
    return crawler, database


def settings(budget: int) -> PhaseSettings:
    return PhaseSettings(name="t", focus=SOFT, fetch_budget=budget)


@pytest.fixture(scope="module")
def kill_resume(tmp_path_factory):
    checkpoint_dir = tmp_path_factory.mktemp("checkpoint")

    baseline, baseline_db = build_crawler()
    baseline_stats = baseline.crawl(settings(BUDGET))

    # the interrupted run: checkpoints every EVERY visits, killed at
    # KILL_AFTER -- everything after the last save is thrown away
    interrupted, _ = build_crawler()
    checkpointer = Checkpointer(checkpoint_dir, every=EVERY)
    interrupted.crawl(settings(KILL_AFTER), checkpointer=checkpointer)
    assert checkpointer.saves == KILL_AFTER // EVERY
    del interrupted

    # resume on a fresh crawler bound to an identical Web and classifier
    resumed, resumed_db = build_crawler()
    resume_stats = restore_crawler(resumed, checkpoint_dir)
    assert resume_stats.visited_urls < BUDGET
    final_stats = resumed.crawl(settings(BUDGET), resume=resume_stats)

    return baseline, baseline_stats, baseline_db, resumed, final_stats, resumed_db


class TestKillResume:
    def test_table1_counters_identical(self, kill_resume) -> None:
        _, baseline_stats, _, _, final_stats, _ = kill_resume
        assert final_stats.table1_row() == baseline_stats.table1_row()
        assert baseline_stats.visited_urls == BUDGET

    def test_diagnostic_counters_identical(self, kill_resume) -> None:
        _, baseline_stats, _, _, final_stats, _ = kill_resume
        for counter in (
            "fetch_errors", "not_found", "redirect_loops", "dns_failures",
            "duplicates_skipped", "mime_rejected", "size_rejected",
            "url_rejected", "locked_skipped", "bad_host_skipped",
            "quarantine_deferred", "slow_deferred", "retries",
        ):
            assert getattr(final_stats, counter) == getattr(
                baseline_stats, counter
            ), f"{counter} diverged across the interruption"

    def test_documents_identical(self, kill_resume) -> None:
        baseline, _, _, resumed, _, _ = kill_resume
        urls_a = [d.final_url for d in baseline.documents]
        urls_b = [d.final_url for d in resumed.documents]
        assert urls_a == urls_b
        topics_a = [d.topic for d in baseline.documents]
        topics_b = [d.topic for d in resumed.documents]
        assert topics_a == topics_b

    def test_host_table_identical(self, kill_resume) -> None:
        baseline, _, _, resumed, _, _ = kill_resume
        assert baseline._hosts.to_dict() == resumed._hosts.to_dict()

    def test_database_rows_survive(self, kill_resume) -> None:
        _, baseline_stats, baseline_db, _, final_stats, resumed_db = kill_resume
        assert len(resumed_db["documents"]) == final_stats.stored_pages
        assert len(resumed_db["documents"]) == len(baseline_db["documents"])


class TestSnapshotRoundTrip:
    def test_snapshot_is_json_clean_and_stable(self, tmp_path) -> None:
        crawler, _ = build_crawler()
        stats = crawler.crawl(settings(30))
        snap = snapshot_crawler(crawler, stats)
        blob = json.dumps(snap, sort_keys=True)  # must not raise

        clone, _ = build_crawler()
        restored_stats = restore_crawler(
            clone, json.loads(blob), restore_database=False
        )
        assert restored_stats.table1_row() == stats.table1_row()
        snap_again = snapshot_crawler(clone, restored_stats)
        assert json.dumps(snap_again, sort_keys=True) == blob

    def test_save_and_load_checkpoint(self, tmp_path) -> None:
        crawler, _ = build_crawler()
        stats = crawler.crawl(settings(25))
        path = save_checkpoint(crawler, stats, tmp_path)
        assert path.exists()
        state = load_checkpoint(tmp_path)
        assert state["stats"]["visited_urls"] == stats.visited_urls
        assert (tmp_path / "database" / "manifest.json").exists()

    def test_checkpointer_cadence(self, tmp_path) -> None:
        crawler, _ = build_crawler()
        checkpointer = Checkpointer(tmp_path, every=10)
        crawler.crawl(settings(35), checkpointer=checkpointer)
        assert checkpointer.saves == 3

    def test_invalid_interval_rejected(self, tmp_path) -> None:
        with pytest.raises(ValueError):
            Checkpointer(tmp_path, every=0)
