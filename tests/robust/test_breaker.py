"""Unit tests for the host circuit breaker state machine."""

from __future__ import annotations

import pytest

from repro.robust import BreakerBoard, BreakerPolicy, HostBreaker
from repro.robust.breaker import (
    ALLOW,
    CLOSED,
    DEFER_QUARANTINE,
    DEFER_SLOW,
    HALF_OPEN,
    OPEN,
    PROBE,
)


def make(**overrides) -> HostBreaker:
    policy = BreakerPolicy(
        slow_after=1, open_after=3, quarantine=100.0,
        quarantine_multiplier=2.0, max_quarantine=400.0,
        slow_cooldown=5.0, **overrides,
    )
    return HostBreaker(policy=policy)


class TestSlowState:
    def test_failures_make_host_slow(self) -> None:
        breaker = make()
        assert not breaker.slow
        breaker.record_failure(0.0)
        assert breaker.slow
        assert breaker.priority_factor == breaker.policy.slow_priority_factor

    def test_success_forgives_failures(self) -> None:
        breaker = make()
        breaker.record_failure(0.0)
        breaker.record_success(1.0)
        assert not breaker.slow
        assert breaker.priority_factor == 1.0

    def test_slow_host_gets_cooldown(self) -> None:
        breaker = make()
        breaker.record_failure(0.0)
        breaker.note_fetch_end(10.0)
        verdict, ready_at = breaker.admit(12.0)
        assert verdict == DEFER_SLOW
        assert ready_at == 10.0 + breaker.policy.slow_cooldown
        verdict, _ = breaker.admit(15.0)
        assert verdict == ALLOW

    def test_healthy_host_has_no_cooldown(self) -> None:
        breaker = make()
        breaker.note_fetch_end(10.0)
        assert breaker.admit(10.1) == (ALLOW, 10.1)


class TestQuarantine:
    def tripped(self) -> HostBreaker:
        breaker = make()
        for t in range(3):
            breaker.record_failure(float(t))
        return breaker

    def test_opens_after_consecutive_failures(self) -> None:
        breaker = make()
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert breaker.state == CLOSED, "two of three failures"
        breaker.record_failure(2.0)
        assert breaker.state == OPEN
        assert breaker.bad
        assert breaker.trips == 1
        assert breaker.probe_at == 2.0 + 100.0

    def test_success_breaks_the_streak(self) -> None:
        breaker = make()
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        breaker.record_success(2.0)
        breaker.record_failure(3.0)
        breaker.record_failure(4.0)
        assert breaker.state == CLOSED

    def test_quarantined_host_defers_until_probe_at(self) -> None:
        breaker = self.tripped()
        verdict, ready_at = breaker.admit(50.0)
        assert verdict == DEFER_QUARANTINE
        assert ready_at == breaker.probe_at

    def test_exactly_one_probe_admitted(self) -> None:
        breaker = self.tripped()
        verdict, _ = breaker.admit(breaker.probe_at)
        assert verdict == PROBE
        assert breaker.state == HALF_OPEN
        assert breaker.probes == 1
        # a second entry arriving while the probe is in flight waits
        verdict, _ = breaker.admit(breaker.probe_at + 0.1)
        assert verdict == DEFER_QUARANTINE

    def test_probe_success_closes_and_resets(self) -> None:
        breaker = self.tripped()
        breaker.admit(breaker.probe_at)
        breaker.record_success(breaker.probe_at + 1.0)
        assert breaker.state == CLOSED
        assert not breaker.bad and not breaker.slow
        assert breaker.admit(breaker.probe_at + 2.0)[0] == ALLOW

    def test_probe_failure_doubles_quarantine(self) -> None:
        breaker = self.tripped()
        first_probe = breaker.probe_at
        breaker.admit(first_probe)
        breaker.record_failure(first_probe)
        assert breaker.state == OPEN
        assert breaker.current_quarantine == 200.0
        assert breaker.probe_at == first_probe + 200.0
        assert breaker.trips == 2

    def test_quarantine_growth_capped(self) -> None:
        breaker = self.tripped()
        for _round in range(5):
            breaker.admit(breaker.probe_at)
            breaker.record_failure(breaker.probe_at)
        assert breaker.current_quarantine == breaker.policy.max_quarantine


class TestSerialization:
    def test_round_trip(self) -> None:
        breaker = make()
        for t in range(3):
            breaker.record_failure(float(t))
        breaker.busy_until.append(9.5)
        clone = HostBreaker.from_dict(breaker.to_dict(), breaker.policy)
        assert clone.to_dict() == breaker.to_dict()
        assert clone.state == OPEN


class TestBreakerBoard:
    def test_get_creates_once(self) -> None:
        board = BreakerBoard()
        a = board.get("h1")
        assert board.get("h1") is a
        assert "h1" in board and len(board) == 1

    def test_priority_factor_does_not_create(self) -> None:
        board = BreakerBoard(BreakerPolicy(slow_priority_factor=0.25))
        assert board.priority_factor("unknown") == 1.0
        assert len(board) == 0
        board.get("h1").record_failure(0.0)
        assert board.priority_factor("h1") == 0.25

    def test_quarantined_and_slow_listings(self) -> None:
        board = BreakerBoard(BreakerPolicy(open_after=1))
        board.get("ok")
        board.get("down").record_failure(0.0)
        assert board.quarantined == ["down"]
        assert board.slow_hosts == ["down"]

    def test_restore_round_trip(self) -> None:
        board = BreakerBoard()
        board.get("h1").record_failure(0.0)
        board.get("h2")
        restored = BreakerBoard(board.policy)
        restored.restore(board.to_dict())
        assert restored.to_dict() == board.to_dict()

    def test_invalid_policy_rejected(self) -> None:
        with pytest.raises(ValueError):
            BreakerBoard(BreakerPolicy(open_after=0))
