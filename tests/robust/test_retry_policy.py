"""Unit tests for the exponential-backoff retry policy."""

from __future__ import annotations

import pytest

from repro.robust import RetryPolicy


class TestDelay:
    def test_exponential_growth(self) -> None:
        policy = RetryPolicy(base_delay=2.0, multiplier=3.0, jitter=0.0)
        assert policy.delay(0, "http://a/") == 2.0
        assert policy.delay(1, "http://a/") == 6.0
        assert policy.delay(2, "http://a/") == 18.0

    def test_delay_capped(self) -> None:
        policy = RetryPolicy(
            base_delay=10.0, multiplier=10.0, max_delay=50.0, jitter=0.0
        )
        assert policy.delay(5, "http://a/") == 50.0

    def test_jitter_bounded_and_deterministic(self) -> None:
        policy = RetryPolicy(base_delay=8.0, multiplier=2.0, jitter=0.25)
        for attempt in range(3):
            raw = 8.0 * 2.0**attempt
            d1 = policy.delay(attempt, "http://a/", seed=3)
            d2 = policy.delay(attempt, "http://a/", seed=3)
            assert d1 == d2, "same inputs, same delay"
            assert raw * 0.75 <= d1 <= raw * 1.25

    def test_jitter_varies_across_urls(self) -> None:
        policy = RetryPolicy(base_delay=8.0, jitter=0.25)
        delays = {policy.delay(0, f"http://x{i}/") for i in range(20)}
        assert len(delays) > 1, "different URLs spread apart"


class TestAllows:
    def test_max_retries_respected(self) -> None:
        policy = RetryPolicy(max_retries=2)
        assert policy.allows(0)
        assert policy.allows(1)
        assert not policy.allows(2)

    def test_budget_respected(self) -> None:
        policy = RetryPolicy(max_retries=10, budget=3)
        assert policy.allows(0, spent=2)
        assert not policy.allows(0, spent=3)

    def test_zero_retries_disables(self) -> None:
        assert not RetryPolicy(max_retries=0).allows(0)


class TestValidate:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_retries=-1),
            dict(base_delay=-1.0),
            dict(base_delay=10.0, max_delay=5.0),
            dict(multiplier=0.5),
            dict(jitter=1.0),
            dict(budget=-1),
        ],
    )
    def test_bad_values_rejected(self, kwargs) -> None:
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs).validate()

    def test_defaults_valid(self) -> None:
        RetryPolicy().validate()
