"""Sharded checkpoint/resume: kill an N=3 crawl, resume, land exactly
where an uninterrupted N=3 run lands.

The checkpoint must capture every per-worker slice -- frontier shards
(with the shared sequence counter), breaker boards, worker-pool free
times -- plus the worker-set counters, and refuse to restore into a
context with a different worker count (a host would hash onto a
different shard and the determinism contract would silently break).
"""

from __future__ import annotations

import pytest

from repro.core import FocusedCrawler
from repro.core.crawler import SOFT, PhaseSettings
from repro.robust.checkpoint import (
    Checkpointer,
    restore_context,
    snapshot_context,
)
from repro.storage.bulkloader import BulkLoader
from repro.storage.database import Database
from repro.web import SyntheticWeb

from tests.conftest import small_web_config
from tests.core.conftest import fast_engine_config
from tests.core.test_crawler import make_trained_classifier

WORKERS = 3
BUDGET = 120
KILL_AFTER = 60
EVERY = 25


def build_crawler(workers: int = WORKERS):
    web = SyntheticWeb.generate(small_web_config())
    config = fast_engine_config(
        max_retries=2, crawl_workers=workers, crawler_threads=2
    )
    classifier = make_trained_classifier(web, config)
    database = Database(validate=True)
    loader = BulkLoader(database, batch_size=10)
    crawler = FocusedCrawler(web, classifier, config, loader=loader)
    crawler.seed(web.seed_homepages(3), topic="ROOT/databases", priority=10.0)
    return crawler, database


def settings(budget: int) -> PhaseSettings:
    return PhaseSettings(name="t", focus=SOFT, fetch_budget=budget)


@pytest.fixture(scope="module")
def kill_resume(tmp_path_factory):
    checkpoint_dir = tmp_path_factory.mktemp("shard-checkpoint")

    baseline, _ = build_crawler()
    baseline_stats = baseline.crawl(settings(BUDGET))

    interrupted, _ = build_crawler()
    checkpointer = Checkpointer(checkpoint_dir, every=EVERY)
    interrupted.crawl(settings(KILL_AFTER), checkpointer=checkpointer)
    assert checkpointer.saves == KILL_AFTER // EVERY
    del interrupted

    resumed, _ = build_crawler()
    resume_stats = restore_context(resumed.ctx, checkpoint_dir)
    assert resume_stats.visited_urls < BUDGET
    final_stats = resumed.pipeline.crawl(settings(BUDGET), resume=resume_stats)
    return baseline, baseline_stats, resumed, final_stats


class TestShardedKillResume:
    def test_counters_identical(self, kill_resume) -> None:
        _, baseline_stats, _, final_stats = kill_resume
        assert final_stats.table1_row() == baseline_stats.table1_row()
        assert final_stats.simulated_seconds == pytest.approx(
            baseline_stats.simulated_seconds
        )

    def test_sharded_state_identical(self, kill_resume) -> None:
        baseline, _, resumed, _ = kill_resume
        a, b = baseline.ctx, resumed.ctx
        assert [d.final_url for d in a.documents] == [
            d.final_url for d in b.documents
        ]
        assert a.frontier.stats() == b.frontier.stats()
        assert a.frontier.sequence.value == b.frontier.sequence.value
        assert a.hosts.to_dict() == b.hosts.to_dict()
        for shard_a, shard_b in zip(a.frontier.shards, b.frontier.shards):
            assert shard_a.stats() == shard_b.stats()
            assert shard_a._seen_urls == shard_b._seen_urls

    def test_worker_set_counters_survive(self, kill_resume) -> None:
        baseline, _, resumed, _ = kill_resume
        a, b = baseline.ctx.workers, resumed.ctx.workers
        assert a is not None and b is not None
        assert b.count == a.count
        assert b.cross_shard_links == a.cross_shard_links
        assert b.local_links == a.local_links
        assert b.commits == a.commits
        assert sorted(
            t for pool in a.pools for t in pool._free_at
        ) == sorted(t for pool in b.pools for t in pool._free_at)


class TestWorkerCountGuards:
    def test_restore_rejects_different_worker_count(self, tmp_path) -> None:
        crawler, _ = build_crawler(workers=3)
        stats = crawler.crawl(settings(20))
        state = snapshot_context(crawler.ctx, stats)
        other, _ = build_crawler(workers=5)
        with pytest.raises(ValueError, match="crawl_workers"):
            restore_context(other.ctx, state)

    def test_restore_rejects_unsharded_context(self, tmp_path) -> None:
        crawler, _ = build_crawler(workers=3)
        stats = crawler.crawl(settings(20))
        state = snapshot_context(crawler.ctx, stats)
        single, _ = build_crawler(workers=1)
        with pytest.raises(ValueError, match="sharding"):
            restore_context(single.ctx, state)

    def test_snapshot_has_worker_section_only_when_sharded(self) -> None:
        sharded, _ = build_crawler(workers=3)
        stats = sharded.crawl(settings(20))
        assert "workers" in snapshot_context(sharded.ctx, stats)
        single, _ = build_crawler(workers=1)
        stats = single.crawl(settings(20))
        assert "workers" not in snapshot_context(single.ctx, stats)
