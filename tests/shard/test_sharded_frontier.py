"""ShardedFrontier vs CrawlFrontier: the oracle-equivalence contract.

The sharded frontier's whole reason to exist is that, driven through
the same script of pushes, requeues, clock advances and pops, it
returns *exactly* the entries a single frontier would, in exactly the
same order, with exactly the same admission counters and DNS-prefetch
call sequence.  These tests run both against shared scripts that
exercise every coordination path: deferred release (with ties),
overflow eviction, refill gating, DNS drops and duplicate drops.
"""

import random

import pytest

from repro.core.frontier import CrawlFrontier, QueueEntry
from repro.shard import ShardedFrontier, ShardRouter


class Script:
    """One deterministic workload applied to two frontiers in lockstep."""

    def __init__(self, seed=0, hosts=24, drop_every=7):
        self.rng = random.Random(seed)
        self.hosts = [f"h{i}.site{i}.example" for i in range(hosts)]
        self.drop_every = drop_every

    def entry(self, i, topic, not_before=0.0):
        host = self.hosts[i % len(self.hosts)]
        return QueueEntry(
            url=f"http://{host}/page{i}.html",
            topic=topic,
            priority=round(self.rng.uniform(0.0, 10.0), 3),
            depth=i % 5,
            not_before=not_before,
        )

    def prefetch_for(self, calls):
        """A deterministic DNS stub that drops every Nth distinct URL
        and records its call order (must match across frontiers)."""

        def prefetch(url):
            calls.append(url)
            return hash_free_bucket(url, self.drop_every) != 0

        return prefetch


def hash_free_bucket(url, modulus):
    """Deterministic bucket without Python's salted hash()."""
    return sum(url.encode("utf-8")) % modulus


def make_pair(workers, clock, script, limits=None):
    limits = limits or {}
    single_calls, sharded_calls = [], []
    single = CrawlFrontier(
        prefetch=script.prefetch_for(single_calls),
        now=lambda: clock["now"],
        **limits,
    )
    sharded = ShardedFrontier(
        ShardRouter(workers),
        prefetch=script.prefetch_for(sharded_calls),
        now=lambda: clock["now"],
        **limits,
    )
    return single, sharded, single_calls, sharded_calls


def assert_counters_equal(single, sharded):
    assert sharded.stats() == single.stats()
    assert sharded.stats() == single.stats()
    assert len(sharded) == len(single)
    assert sharded.enqueued == single.enqueued
    assert sharded.duplicate_drops == single.duplicate_drops
    assert sharded.evictions == single.evictions
    assert sharded.dns_drops == single.dns_drops
    assert sharded.deferred_total == single.deferred_total
    assert sharded._seen_urls == single._seen_urls


@pytest.mark.parametrize("workers", [1, 3, 8])
def test_pop_order_identical_basic(workers):
    clock = {"now": 0.0}
    script = Script(seed=1)
    single, sharded, s_calls, h_calls = make_pair(workers, clock, script)
    for i in range(120):
        topic = f"ROOT/t{i % 3}"
        entry = script.entry(i, topic)
        assert sharded.push(entry) == single.push(entry)
    singles = [single.pop() for _ in range(130)]
    shardeds = [sharded.pop() for _ in range(130)]
    assert shardeds == singles
    assert h_calls == s_calls
    assert_counters_equal(single, sharded)


@pytest.mark.parametrize("workers", [2, 5])
def test_deferred_release_order_identical(workers):
    """Deferred entries across shards release in global
    (not_before, admission) order -- including exact ties."""
    clock = {"now": 0.0}
    script = Script(seed=2)
    single, sharded, *_ = make_pair(workers, clock, script)
    for i in range(60):
        # many exact not_before ties across different hosts/shards
        entry = script.entry(i, "ROOT/x", not_before=float(5 + (i % 4) * 10))
        single.push(entry)
        sharded.push(entry)
    assert sharded.pop() is None and single.pop() is None
    assert sharded.next_ready_at() == single.next_ready_at() == 5.0
    for now in (5.0, 15.0, 25.0, 35.0):
        clock["now"] = now
        while True:
            a, b = single.pop(), sharded.pop()
            assert b == a
            if a is None:
                break
    assert_counters_equal(single, sharded)


@pytest.mark.parametrize("workers", [3])
def test_eviction_identical_under_small_limits(workers):
    """The incoming limit is global: the sharded frontier evicts the
    globally worst candidate even when the insert hit another shard."""
    clock = {"now": 0.0}
    script = Script(seed=3)
    limits = {"incoming_limit": 10, "outgoing_limit": 4, "refill_batch": 3}
    single, sharded, s_calls, h_calls = make_pair(
        workers, clock, script, limits
    )
    pops = []
    for i in range(150):
        entry = script.entry(i, f"ROOT/t{i % 2}")
        assert sharded.push(entry) == single.push(entry)
        if i % 5 == 4:
            a, b = single.pop(), sharded.pop()
            assert b == a
            pops.append(a)
    while True:
        a, b = single.pop(), sharded.pop()
        assert b == a
        if a is None:
            break
    assert single.evictions > 0  # the script actually overflowed
    assert single.dns_drops > 0  # and dropped DNS candidates
    assert h_calls == s_calls
    assert_counters_equal(single, sharded)


def test_requeue_and_duplicate_paths_identical():
    clock = {"now": 0.0}
    script = Script(seed=4)
    single, sharded, *_ = make_pair(4, clock, script)
    entries = [script.entry(i, "ROOT/q") for i in range(40)]
    for entry in entries:
        single.push(entry)
        sharded.push(entry)
    for entry in entries[:10]:  # duplicates are dropped identically
        assert sharded.push(entry) == single.push(entry) is False
    replayed = []
    for _ in range(15):
        a, b = single.pop(), sharded.pop()
        assert b == a
        replayed.append(a)
    for entry in replayed[:6]:  # breaker-style deferrals come back
        bumped = QueueEntry(
            url=entry.url,
            topic=entry.topic,
            priority=entry.priority * 0.5,
            depth=entry.depth,
            attempt=entry.attempt + 1,
            not_before=clock["now"] + 30.0,
            deferrals=entry.deferrals + 1,
        )
        single.requeue(bumped)
        sharded.requeue(bumped)
    clock["now"] = 31.0
    while True:
        a, b = single.pop(), sharded.pop()
        assert b == a
        if a is None:
            break
    assert_counters_equal(single, sharded)


def test_mixed_script_fuzz_equivalence():
    """A longer randomized (seeded) interleaving of all operations."""
    clock = {"now": 0.0}
    script = Script(seed=5, hosts=40, drop_every=9)
    limits = {"incoming_limit": 30, "outgoing_limit": 6, "refill_batch": 4}
    single, sharded, s_calls, h_calls = make_pair(8, clock, script, limits)
    rng = random.Random(99)
    popped = []
    for i in range(600):
        op = rng.random()
        if op < 0.55:
            not_before = clock["now"] + rng.choice([0.0, 0.0, 10.0, 25.0])
            entry = script.entry(i, f"ROOT/t{i % 4}", not_before=not_before)
            assert sharded.push(entry) == single.push(entry)
        elif op < 0.80:
            a, b = single.pop(), sharded.pop()
            assert b == a
            if a is not None:
                popped.append(a)
        elif op < 0.90 and popped:
            entry = popped.pop(rng.randrange(len(popped)))
            bumped = QueueEntry(
                url=entry.url,
                topic=entry.topic,
                priority=entry.priority * 0.8,
                depth=entry.depth,
                attempt=entry.attempt + 1,
                not_before=clock["now"] + rng.choice([5.0, 12.0]),
            )
            single.requeue(bumped)
            sharded.requeue(bumped)
        else:
            clock["now"] += rng.choice([1.0, 4.0, 9.0])
        assert sharded.next_ready_at() == single.next_ready_at()
    clock["now"] += 1000.0
    while True:
        a, b = single.pop(), sharded.pop()
        assert b == a
        if a is None:
            break
    assert h_calls == s_calls
    assert_counters_equal(single, sharded)


def test_aggregate_views():
    clock = {"now": 0.0}
    script = Script(seed=6)
    _, sharded, *_ = make_pair(4, clock, script)
    for i in range(30):
        sharded.push(script.entry(i, f"ROOT/t{i % 2}"))
    assert sharded.pending_for("ROOT/t0") + sharded.pending_for(
        "ROOT/t1"
    ) == len(sharded)
    assert sharded.topics == ["ROOT/t0", "ROOT/t1"]
    assert sharded.has_seen(script.entry(0, "ROOT/t0").url)
    assert not sharded.has_seen("http://nowhere.example/")
    stats = sharded.stats()
    assert stats["enqueued"] == 30.0
    assert set(stats) == {
        "size",
        "enqueued",
        "duplicate_drops",
        "evictions",
        "dns_drops",
        "deferred_total",
    }


def test_snapshot_restore_round_trip():
    """A restored sharded frontier pops identically to the original."""
    clock = {"now": 0.0}
    script = Script(seed=7)
    single, sharded, *_ = make_pair(3, clock, script)
    for i in range(80):
        not_before = 40.0 if i % 3 == 0 else 0.0
        entry = script.entry(i, f"ROOT/t{i % 2}", not_before=not_before)
        single.push(entry)
        sharded.push(entry)
    for _ in range(10):
        assert sharded.pop() == single.pop()

    state = sharded.snapshot()
    restored = ShardedFrontier(
        ShardRouter(3),
        prefetch=script.prefetch_for([]),
        now=lambda: clock["now"],
    )
    restored.restore(state)
    assert restored.stats() == sharded.stats()

    clock["now"] = 41.0
    a_pops, b_pops = [], []
    while True:
        a, b = sharded.pop(), restored.pop()
        a_pops.append(a)
        b_pops.append(b)
        if a is None and b is None:
            break
    assert b_pops == a_pops


def test_restore_rejects_worker_mismatch():
    clock = {"now": 0.0}
    script = Script(seed=8)
    _, sharded, *_ = make_pair(3, clock, script)
    state = sharded.snapshot()
    other = ShardedFrontier(ShardRouter(5), now=lambda: clock["now"])
    with pytest.raises(ValueError, match="crawl_workers"):
        other.restore(state)
