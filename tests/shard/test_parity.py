"""The headline sharding guarantee: N=1 and N=8 crawl identically.

On a healthy Web (no slow or error hosts, no fault windows) not a
single crawl *decision* reads the clock -- fetch outcomes are
(seed, url)-deterministic, DNS answers are zone-deterministic, breakers
stay closed and the deferred heap stays empty -- so the only thing more
workers change is *when* fetches happen, never *what* gets fetched.
These tests pin that contract end to end: Table-1 counters, the full
diagnostic counter set (minus the two time-derived fields), the stored
document sequence and the frontier state are bit-identical for 1, 3
and 8 workers, while the simulated crawl time shrinks.

DESIGN.md ("Sharding the crawl runtime") spells out the argument; the
frontier-level half of the proof lives in test_sharded_frontier.py.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.core import FocusedCrawler
from repro.core.crawler import SOFT, PhaseSettings
from repro.storage.bulkloader import BulkLoader
from repro.storage.database import Database
from repro.web import SyntheticWeb

from tests.conftest import small_web_config
from tests.core.conftest import fast_engine_config
from tests.core.test_crawler import make_trained_classifier

#: stats fields that legitimately depend on fetch *timing* and so may
#: differ between worker counts (more workers -> less simulated time,
#: different politeness-slot contention).  Everything else must match.
TIME_DERIVED = {"simulated_seconds", "politeness_defers"}

FETCH_BUDGET = 120
TABLES = ("documents", "terms", "links", "crawl_log")


def healthy_web_config():
    """The parity scenario needs a Web with no failure timing: retries
    and breaker deferrals re-enter the frontier at clock-dependent
    points, which is exactly the (legitimate) N-dependence we exclude."""
    return small_web_config(slow_host_rate=0.0, error_host_rate=0.0)


def sha(items) -> str:
    return hashlib.sha256("\n".join(items).encode()).hexdigest()[:16]


def run_soft_crawl(workers: int):
    web = SyntheticWeb.generate(healthy_web_config())
    # 2 threads per worker keeps the small crawl *pool*-bound (the
    # default 15 would leave domain politeness as the only bottleneck
    # and N workers would crawl no faster than one -- decisions would
    # still match, but the speedup assertion would be vacuous)
    config = fast_engine_config(
        max_retries=2, crawl_workers=workers, crawler_threads=2
    )
    classifier = make_trained_classifier(web, config)
    database = Database(validate=True)
    loader = BulkLoader(database, batch_size=10)
    crawler = FocusedCrawler(web, classifier, config, loader=loader)
    crawler.seed(
        web.seed_homepages(3), topic="ROOT/databases", priority=10.0
    )
    stats = crawler.crawl(
        PhaseSettings(name="t", focus=SOFT, fetch_budget=FETCH_BUDGET)
    )
    return crawler, stats, database


def decision_fingerprint(crawler, stats, database) -> dict:
    """Everything a crawl *decided* (as opposed to when it happened)."""
    counters = {
        field: getattr(stats, field)
        for field in stats.__dataclass_fields__
        if field != "hosts_visited" and field not in TIME_DERIVED
    }
    return {
        "table1": stats.table1_row(),
        "counters": counters,
        "hosts_sha": sha(sorted(stats.hosts_visited)),
        "doc_urls_sha": sha([d.final_url for d in crawler.documents]),
        "doc_topics_sha": sha([d.topic for d in crawler.documents]),
        "frontier": crawler.frontier.stats(),
        "frontier_seen_sha": sha(sorted(crawler.frontier._seen_urls)),
        "converted_formats": dict(crawler.converted_formats),
        "retry_log": len(crawler.retry_log),
        "db_rows": {name: len(database[name]) for name in TABLES},
    }


@pytest.fixture(scope="module")
def baseline():
    return run_soft_crawl(workers=1)


@pytest.fixture(scope="module", params=[3, 8])
def workers(request):
    return request.param


@pytest.fixture(scope="module")
def sharded(workers):
    return run_soft_crawl(workers=workers)


class TestWorkerCountParity:
    def test_table1_bit_identical(self, baseline, sharded) -> None:
        _, base_stats, _ = baseline
        _, shard_stats, _ = sharded
        assert shard_stats.table1_row() == base_stats.table1_row()

    def test_all_decisions_bit_identical(self, baseline, sharded) -> None:
        assert decision_fingerprint(*sharded) == decision_fingerprint(
            *baseline
        )

    def test_healthy_web_premise_holds(self, sharded) -> None:
        """The scenario must exercise zero clock-coupled decisions,
        otherwise the parity above would be vacuous luck."""
        crawler, stats, _ = sharded
        assert stats.retries == 0
        assert stats.fetch_errors == 0
        assert stats.quarantine_deferred == 0
        assert stats.slow_deferred == 0
        assert crawler.frontier.deferred_total == 0
        assert stats.visited_urls == FETCH_BUDGET  # budget was consumed

    def test_more_workers_crawl_faster(self, baseline, sharded) -> None:
        _, base_stats, _ = baseline
        _, shard_stats, _ = sharded
        assert shard_stats.simulated_seconds < base_stats.simulated_seconds

    def test_sharded_runtime_was_in_play(self, sharded, workers) -> None:
        crawler, _, _ = sharded
        ctx = crawler.ctx
        assert ctx.workers is not None
        assert ctx.workers.count == workers
        assert len(ctx.workers.slices) == workers
        # fetches really ran on more than one worker pool
        active_pools = [
            pool
            for pool in ctx.workers.pools
            if any(t > 0.0 for t in pool._free_at)
        ]
        assert len(active_pools) > 1
        # and the handoff accounting saw both link localities
        assert ctx.workers.cross_shard_links > 0
        assert ctx.workers.local_links > 0

    def test_worker_metrics_exported(self, sharded, workers) -> None:
        crawler, _, _ = sharded
        exported = crawler.ctx.obs.registry.source_stats()
        assert exported["shard"]["workers"] == float(workers)
        per_worker = [
            exported[f"shard_w{i}"]["enqueued"] for i in range(workers)
        ]
        assert sum(per_worker) == exported["frontier"]["enqueued"]
        assert all(count > 0 for count in per_worker)
