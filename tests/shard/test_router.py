"""ShardRouter: stability, range, spread and URL routing."""

import pytest

from repro.shard import ShardRouter


def test_rejects_zero_workers():
    with pytest.raises(ValueError):
        ShardRouter(0)


def test_shard_ids_in_range():
    router = ShardRouter(5)
    for i in range(200):
        assert 0 <= router.shard_of(f"h{i}.example") < 5


def test_stable_across_instances():
    hosts = [f"host{i}.example.org" for i in range(100)]
    a = ShardRouter(8)
    b = ShardRouter(8)
    assert [a.shard_of(h) for h in hosts] == [b.shard_of(h) for h in hosts]


def test_memoized_lookup_is_consistent():
    router = ShardRouter(8)
    first = router.shard_of("www.example.com")
    assert router.shard_of("www.example.com") == first


def test_every_shard_gets_hosts():
    """BLAKE2b spreads even structured host names over all workers."""
    router = ShardRouter(8)
    shards = {router.shard_of(f"u{i}.edu.example") for i in range(200)}
    assert shards == set(range(8))


def test_single_worker_routes_everything_to_zero():
    router = ShardRouter(1)
    assert router.shard_of("anything.example") == 0


def test_url_routing_matches_host_routing():
    router = ShardRouter(4)
    url = "http://u1.edu.example/research/page1.html"
    assert router.shard_of_url(url) == router.shard_of("u1.edu.example")


def test_unparseable_url_routes_to_zero():
    assert ShardRouter(4).shard_of_url("not a url") == 0
