"""Unit tests for tunnelling mechanics (paper sections 3.3 and 4.2)."""

from __future__ import annotations

import pytest

from repro.core import BingoConfig, FocusedCrawler, HierarchicalClassifier
from repro.core.crawler import SOFT, PhaseSettings
from repro.core.frontier import QueueEntry
from repro.core.ontology import TopicTree
from repro.text.vectorizer import SparseVector


def test_tunnelled_priority_decays_exponentially(small_web) -> None:
    """Links out of rejected pages get priority * decay^steps."""
    config = BingoConfig(tunnel_priority_decay=0.5)
    tree = TopicTree.from_leaves(["t"])
    classifier = HierarchicalClassifier(tree, config)
    crawler = FocusedCrawler(small_web, classifier, config)

    from repro.core.classifier import ClassificationResult
    from repro.core.crawler import CrawledDocument
    from collections import Counter

    document = CrawledDocument(
        doc_id=0, url="http://h/x", final_url="http://h/x", page_id=None,
        host="h", ip="1.1.1.1", mime="text/html", size=10, title="",
        depth=1, topic="ROOT/OTHERS", confidence=0.8,
        counts={"term": Counter()},
        out_urls=["http://u0.edu.example/~a/p.html"], fetched_at=0.0,
    )
    rejected = ClassificationResult(topic="ROOT/OTHERS", confidence=0.8)
    entry = QueueEntry(
        url="http://h/x", topic="ROOT/t", priority=0.8, depth=1,
        tunnelled=1,
    )
    settings = PhaseSettings(name="t", focus=SOFT, tunnelling=True)
    crawler._enqueue_links(entry, document, rejected, settings)
    queued = crawler.frontier.pop()
    assert queued is not None
    # tunnelled step 2: confidence 0.8 * 0.5^2 = 0.2
    assert queued.tunnelled == 2
    assert queued.priority == pytest.approx(0.8 * 0.25)


def test_tunnelling_stops_at_max_distance(small_web) -> None:
    config = BingoConfig(max_tunnelling_distance=2)
    tree = TopicTree.from_leaves(["t"])
    classifier = HierarchicalClassifier(tree, config)
    crawler = FocusedCrawler(small_web, classifier, config)

    from repro.core.classifier import ClassificationResult
    from repro.core.crawler import CrawledDocument
    from collections import Counter

    document = CrawledDocument(
        doc_id=0, url="http://h/x", final_url="http://h/x", page_id=None,
        host="h", ip="1.1.1.1", mime="text/html", size=10, title="",
        depth=1, topic="ROOT/OTHERS", confidence=0.8,
        counts={"term": Counter()},
        out_urls=["http://u0.edu.example/~a/p.html"], fetched_at=0.0,
    )
    rejected = ClassificationResult(topic="ROOT/OTHERS", confidence=0.8)
    # already at the tunnelling limit -> links are dropped
    entry = QueueEntry(
        url="http://h/x", topic="ROOT/t", priority=0.8, depth=1,
        tunnelled=2,
    )
    settings = PhaseSettings(name="t", focus=SOFT, tunnelling=True)
    crawler._enqueue_links(entry, document, rejected, settings)
    assert crawler.frontier.pop() is None


def test_accepted_page_resets_tunnel_counter(small_web) -> None:
    config = BingoConfig()
    tree = TopicTree.from_leaves(["t"])
    classifier = HierarchicalClassifier(tree, config)
    crawler = FocusedCrawler(small_web, classifier, config)

    from repro.core.classifier import ClassificationResult
    from repro.core.crawler import CrawledDocument
    from collections import Counter

    document = CrawledDocument(
        doc_id=0, url="http://h/x", final_url="http://h/x", page_id=None,
        host="h", ip="1.1.1.1", mime="text/html", size=10, title="",
        depth=1, topic="ROOT/t", confidence=0.9,
        counts={"term": Counter()},
        out_urls=["http://u0.edu.example/~a/p.html"], fetched_at=0.0,
    )
    accepted = ClassificationResult(
        topic="ROOT/t", confidence=0.9, path=(("ROOT/t", 0.9),)
    )
    entry = QueueEntry(
        url="http://h/x", topic="ROOT/t", priority=0.8, depth=1,
        tunnelled=2,  # the page was reached through a tunnel ...
    )
    settings = PhaseSettings(name="t", focus=SOFT, tunnelling=True)
    crawler._enqueue_links(entry, document, accepted, settings)
    queued = crawler.frontier.pop()
    assert queued is not None
    # ... but being accepted resets the counter for its own links
    assert queued.tunnelled == 0
    assert queued.priority == pytest.approx(0.9)
