"""Tests for three-stage duplicate detection."""

from __future__ import annotations

from repro.core.dedup import DuplicateDetector


class TestStage1UrlHash:
    def test_first_sighting_is_new(self) -> None:
        detector = DuplicateDetector()
        assert not detector.is_known_url("http://a/x")
        assert detector.is_known_url("http://a/x")
        assert detector.stats.url_hash_hits == 1

    def test_distinct_urls_pass(self) -> None:
        detector = DuplicateDetector()
        assert not detector.is_known_url("http://a/x")
        assert not detector.is_known_url("http://a/y")
        assert detector.stats.url_hash_hits == 0


class TestStage2IpPath:
    def test_same_path_on_host_alias_detected(self) -> None:
        """Two hostnames resolving to one IP serving the same path."""
        detector = DuplicateDetector()
        assert not detector.is_known_ip_path("10.0.0.1", "http://www.a.com/p")
        assert detector.is_known_ip_path("10.0.0.1", "http://a.com/p")
        assert detector.stats.ip_path_hits == 1

    def test_different_paths_pass(self) -> None:
        detector = DuplicateDetector()
        assert not detector.is_known_ip_path("10.0.0.1", "http://a.com/p")
        assert not detector.is_known_ip_path("10.0.0.1", "http://a.com/q")

    def test_same_path_different_ip_passes(self) -> None:
        detector = DuplicateDetector()
        assert not detector.is_known_ip_path("10.0.0.1", "http://a.com/p")
        assert not detector.is_known_ip_path("10.0.0.2", "http://b.com/p")


class TestStage3IpSize:
    def test_same_ip_and_size_is_duplicate(self) -> None:
        detector = DuplicateDetector()
        assert not detector.is_known_ip_size("10.0.0.1", 4321)
        assert detector.is_known_ip_size("10.0.0.1", 4321)
        assert detector.stats.ip_size_hits == 1

    def test_same_size_other_host_passes(self) -> None:
        """Filesize is only assumed unique *within* one host."""
        detector = DuplicateDetector()
        assert not detector.is_known_ip_size("10.0.0.1", 4321)
        assert not detector.is_known_ip_size("10.0.0.2", 4321)


class TestRedirects:
    def test_redirect_target_registration(self) -> None:
        detector = DuplicateDetector()
        assert not detector.register_redirect_target("http://a/canonical")
        # arriving at the same canonical URL via another alias
        assert detector.register_redirect_target("http://a/canonical")


def test_stats_totals() -> None:
    detector = DuplicateDetector()
    detector.is_known_url("http://a/")
    detector.is_known_url("http://a/")
    detector.is_known_ip_path("ip", "http://a/")
    detector.is_known_ip_path("ip", "http://a/")
    detector.is_known_ip_size("ip", 1)
    detector.is_known_ip_size("ip", 1)
    assert detector.stats.total_hits == 3
    assert detector.stats.checked == 2  # only stage 1 counts checks
