"""Model-based property tests for the crawl frontier."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frontier import CrawlFrontier, QueueEntry


entries = st.lists(
    st.tuples(
        st.integers(0, 400),                       # url id
        st.floats(0, 10, allow_nan=False),          # priority
        st.sampled_from(["t1", "t2", "t3"]),        # topic
    ),
    max_size=120,
)


@given(entries)
@settings(max_examples=60, deadline=None)
def test_pop_order_matches_reference_model(items) -> None:
    """Frontier pops are globally priority-ordered; duplicates dropped."""
    frontier = CrawlFrontier()
    reference: dict[str, tuple[float, int]] = {}
    for order, (url_id, priority, topic) in enumerate(items):
        url = f"http://h/{url_id}"
        accepted = frontier.push(
            QueueEntry(url=url, topic=topic, priority=priority, depth=0)
        )
        if url in reference:
            assert not accepted
        else:
            assert accepted
            reference[url] = (priority, -order)
    popped = []
    while (entry := frontier.pop()) is not None:
        popped.append(entry)
    assert len(popped) == len(reference)
    # priorities weakly decrease and FIFO breaks ties
    keys = [reference[e.url] for e in popped]
    assert keys == sorted(keys, reverse=True)


@given(entries, st.integers(1, 10), st.integers(1, 10))
@settings(max_examples=40, deadline=None)
def test_bounded_queues_never_exceed_limits(items, incoming, outgoing) -> None:
    if incoming < outgoing:
        incoming, outgoing = outgoing, incoming
    frontier = CrawlFrontier(
        incoming_limit=incoming, outgoing_limit=outgoing
    )
    for url_id, priority, topic in items:
        frontier.push(
            QueueEntry(
                url=f"http://h/{url_id}", topic=topic,
                priority=priority, depth=0,
            )
        )
        for queues in frontier._queues.values():
            assert len(queues.incoming) <= incoming
            assert len(queues.outgoing) <= outgoing
    drained = 0
    while frontier.pop() is not None:
        drained += 1
    assert drained <= len(items)
