"""Property tests for MI feature selection."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.feature_selection import select_features

terms = st.sampled_from([f"t{i}" for i in range(12)])
documents = st.lists(st.lists(terms, min_size=1, max_size=8),
                     min_size=1, max_size=10)


@given(documents, documents)
@settings(max_examples=50, deadline=None)
def test_selection_invariants(topic_docs, other_docs) -> None:
    ranked = select_features(
        {"topic": topic_docs, "other": other_docs}, "topic",
        tf_preselection=100, selected_features=100,
    )
    topic_terms = {t for doc in topic_docs for t in doc}
    weights = [score.weight for score in ranked]
    features = [score.feature for score in ranked]
    # every selected feature occurs in the topic's documents
    assert set(features) <= topic_terms
    # strictly positive, descending weights; sequential ranks
    assert all(w > 0 for w in weights)
    assert weights == sorted(weights, reverse=True)
    assert [score.rank for score in ranked] == list(range(1, len(ranked) + 1))
    # no duplicates
    assert len(set(features)) == len(features)


@given(documents)
@settings(max_examples=30, deadline=None)
def test_topic_unique_terms_always_selected(topic_docs) -> None:
    """Terms that appear only in the topic have positive MI and survive
    selection (as long as the budget allows)."""
    other_docs = [["zzz"]]
    ranked = select_features(
        {"topic": topic_docs, "other": other_docs}, "topic",
        tf_preselection=1000, selected_features=1000,
    )
    topic_terms = {t for doc in topic_docs for t in doc}
    assert set(f.feature for f in ranked) == topic_terms
