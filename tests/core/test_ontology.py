"""Tests for the topic tree."""

from __future__ import annotations

import pytest

from repro.core.ontology import ROOT, TopicTree
from repro.errors import OntologyError


@pytest.fixture()
def paper_tree() -> TopicTree:
    """The example of paper section 2.3: math (algebra, stochastics),
    agriculture, arts."""
    return TopicTree.from_nested(
        {
            "mathematics": {"algebra": {}, "stochastics": {}},
            "agriculture": {},
            "arts": {},
        }
    )


class TestConstruction:
    def test_from_leaves_single_level(self) -> None:
        tree = TopicTree.from_leaves(["databases", "ir"])
        assert tree.leaves() == ["ROOT/databases", "ROOT/ir"]
        assert len(tree) == 2

    def test_from_nested(self, paper_tree: TopicTree) -> None:
        assert "ROOT/mathematics/algebra" in paper_tree
        assert paper_tree.node("ROOT/mathematics/algebra").depth == 2

    def test_duplicate_topic_rejected(self) -> None:
        tree = TopicTree.from_leaves(["a"])
        with pytest.raises(OntologyError):
            tree.add_topic("a", parent=ROOT)

    def test_same_label_under_different_parents_ok(self) -> None:
        tree = TopicTree.from_nested({"x": {"sub": {}}, "y": {"sub": {}}})
        assert "ROOT/x/sub" in tree
        assert "ROOT/y/sub" in tree

    def test_unknown_parent_rejected(self) -> None:
        with pytest.raises(OntologyError):
            TopicTree().add_topic("a", parent="ROOT/none")

    def test_slash_in_label_rejected(self) -> None:
        with pytest.raises(OntologyError):
            TopicTree().add_topic("a/b")

    def test_others_label_reserved(self) -> None:
        with pytest.raises(OntologyError):
            TopicTree().add_topic("OTHERS")


class TestStructure:
    def test_every_node_has_others(self, paper_tree: TopicTree) -> None:
        assert paper_tree.others_of(ROOT) == "ROOT/OTHERS"
        assert (
            paper_tree.others_of("ROOT/mathematics")
            == "ROOT/mathematics/OTHERS"
        )
        assert paper_tree.node("ROOT/mathematics/OTHERS").is_others

    def test_competing_topics(self, paper_tree: TopicTree) -> None:
        competing = paper_tree.competing_topics("ROOT/mathematics/algebra")
        assert set(competing) == {
            "ROOT/mathematics/algebra", "ROOT/mathematics/stochastics",
        }

    def test_children_excludes_others(self, paper_tree: TopicTree) -> None:
        children = paper_tree.children_of(ROOT)
        assert all(not c.endswith("/OTHERS") for c in children)
        assert len(children) == 3

    def test_leaves(self, paper_tree: TopicTree) -> None:
        assert paper_tree.leaves() == [
            "ROOT/agriculture",
            "ROOT/arts",
            "ROOT/mathematics/algebra",
            "ROOT/mathematics/stochastics",
        ]

    def test_inner_nodes(self, paper_tree: TopicTree) -> None:
        assert paper_tree.inner_nodes() == ["ROOT", "ROOT/mathematics"]

    def test_path_to_root(self, paper_tree: TopicTree) -> None:
        assert paper_tree.path_to_root("ROOT/mathematics/algebra") == [
            "ROOT/mathematics/algebra", "ROOT/mathematics", ROOT,
        ]

    def test_leaf_label(self, paper_tree: TopicTree) -> None:
        assert paper_tree.leaf_label("ROOT/mathematics/algebra") == "algebra"

    def test_unknown_topic_raises(self, paper_tree: TopicTree) -> None:
        with pytest.raises(OntologyError):
            paper_tree.node("ROOT/nope")

    def test_single_node_tree_special_case(self) -> None:
        """Paper: 'a single-node tree is a special case'."""
        tree = TopicTree.from_leaves(["aries"])
        assert tree.leaves() == ["ROOT/aries"]
        assert tree.competing_topics("ROOT/aries") == ["ROOT/aries"]
        assert tree.inner_nodes() == ["ROOT"]
