"""Unit and property tests for the red-black tree."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rbtree import RedBlackTree


class TestBasics:
    def test_empty(self) -> None:
        tree = RedBlackTree()
        assert len(tree) == 0
        assert not tree
        with pytest.raises(IndexError):
            tree.pop_min()
        with pytest.raises(IndexError):
            tree.pop_max()
        with pytest.raises(IndexError):
            tree.peek_min()

    def test_insert_and_pop_order(self) -> None:
        tree = RedBlackTree()
        for key in [5, 1, 9, 3, 7]:
            tree.insert((key,), f"v{key}")
        assert tree.pop_min() == ((1,), "v1")
        assert tree.pop_max() == ((9,), "v9")
        assert tree.pop_max() == ((7,), "v7")
        assert len(tree) == 2

    def test_peek_does_not_remove(self) -> None:
        tree = RedBlackTree()
        tree.insert((1,))
        tree.insert((2,))
        assert tree.peek_max() == ((2,), None)
        assert len(tree) == 2

    def test_duplicates_allowed(self) -> None:
        tree = RedBlackTree()
        tree.insert((1,), "a")
        tree.insert((1,), "b")
        assert len(tree) == 2
        popped = {tree.pop_min()[1], tree.pop_min()[1]}
        assert popped == {"a", "b"}

    def test_items_in_order(self) -> None:
        tree = RedBlackTree()
        for key in [4, 2, 8, 6, 0]:
            tree.insert((key,))
        keys = [k for k, _ in tree.items_in_order()]
        assert keys == sorted(keys)


class TestInvariants:
    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=200))
    @settings(max_examples=60)
    def test_invariants_hold_after_inserts(self, keys: list[int]) -> None:
        tree = RedBlackTree()
        for key in keys:
            tree.insert((key,))
        tree.check_invariants()
        assert len(tree) == len(keys)

    @given(
        st.lists(st.integers(min_value=0, max_value=100), max_size=120),
        st.lists(st.booleans(), max_size=120),
    )
    @settings(max_examples=60)
    def test_invariants_after_mixed_pops(self, keys, pops) -> None:
        tree = RedBlackTree()
        reference: list[int] = []
        for key in keys:
            tree.insert((key,))
            reference.append(key)
        for take_max in pops:
            if not reference:
                break
            if take_max:
                key, _ = tree.pop_max()
                expected = max(reference)
            else:
                key, _ = tree.pop_min()
                expected = min(reference)
            assert key == (expected,)
            reference.remove(expected)
            tree.check_invariants()
        assert len(tree) == len(reference)

    @given(st.lists(st.integers(), min_size=1, max_size=150))
    @settings(max_examples=60)
    def test_drain_yields_sorted_sequence(self, keys: list[int]) -> None:
        tree = RedBlackTree()
        for key in keys:
            tree.insert((key,))
        drained = [tree.pop_min()[0][0] for _ in range(len(keys))]
        assert drained == sorted(keys)
        assert len(tree) == 0
