"""Pluggable node learners (paper 1.2: NB, MaxEnt, SVM, ...)."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.classifier import HierarchicalClassifier
from repro.core.config import BingoConfig
from repro.core.ontology import TopicTree
from repro.errors import ConfigError, TrainingError


def make_training(seed: int = 5):
    rng = np.random.default_rng(seed)
    topic_vocab = [f"t{i}" for i in range(30)]
    noise_vocab = [f"n{i}" for i in range(30)]

    def docs(vocab, n):
        out = []
        for _ in range(n):
            counts = Counter()
            for _ in range(10):
                counts[vocab[int(rng.integers(len(vocab)))]] += 1
            out.append({"term": counts})
        return out

    return {
        "ROOT/topic": docs(topic_vocab, 18),
        "ROOT/OTHERS": docs(noise_vocab, 18),
    }, docs(topic_vocab, 10), docs(noise_vocab, 10)


#: minimum positives accepted out of 10.  Naive Bayes is structurally
#: weak in BINGO!'s *topic-projected* feature space: the negative class
#: carries no mass over the selected features, so rare topic features
#: look like negative evidence under the smoothed rate comparison --
#: one of the reasons the paper settles on SVMs for the node models.
MIN_ACCEPTED = {"svm": 8, "maxent": 8, "naive-bayes": 3, "rocchio": 8}


@pytest.mark.parametrize(
    "kind", ["svm", "maxent", "naive-bayes", "rocchio"]
)
def test_every_learner_classifies_held_out(kind: str) -> None:
    training, pos_test, neg_test = make_training()
    config = BingoConfig(
        node_classifier=kind, selected_features=100, tf_preselection=400,
    )
    classifier = HierarchicalClassifier(
        TopicTree.from_leaves(["topic"]), config
    )
    for docs in training.values():
        for doc in docs:
            classifier.ingest(doc)
    classifier.train(training)
    accepted = sum(classifier.classify(d).accepted for d in pos_test)
    rejected = sum(not classifier.classify(d).accepted for d in neg_test)
    assert accepted >= MIN_ACCEPTED[kind], f"{kind} missed positives"
    assert rejected >= 8, f"{kind} accepted noise"
    member = classifier.models["ROOT/topic"].members[0]
    assert 0.0 <= member.estimate.precision <= 1.0
    if kind == "svm":
        assert hasattr(member.svm, "alphas_")
    else:
        assert member.svm.name.startswith(kind.split("-")[0])


def test_unknown_learner_rejected() -> None:
    with pytest.raises(ConfigError):
        BingoConfig(node_classifier="perceptron").validate()


def test_non_svm_confidence_is_decision_value() -> None:
    training, pos_test, _ = make_training(seed=9)
    config = BingoConfig(
        node_classifier="naive-bayes",
        selected_features=100, tf_preselection=400,
    )
    classifier = HierarchicalClassifier(
        TopicTree.from_leaves(["topic"]), config
    )
    for docs in training.values():
        for doc in docs:
            classifier.ingest(doc)
    classifier.train(training)
    result = classifier.classify(pos_test[0])
    if result.accepted:
        assert result.confidence > 0


def test_cross_validation_estimate_shape() -> None:
    from repro.core.classifier import _cross_validation_estimate
    from repro.ml.naive_bayes import NaiveBayesClassifier
    from repro.text.vectorizer import SparseVector

    vectors = [SparseVector({"p": 1.0})] * 8 + [SparseVector({"n": 1.0})] * 8
    labels = [1] * 8 + [-1] * 8
    estimate = _cross_validation_estimate(
        NaiveBayesClassifier, vectors, labels
    )
    assert estimate.precision == pytest.approx(1.0)
    assert estimate.recall == pytest.approx(1.0)
    assert estimate.error == pytest.approx(0.0)


def test_degenerate_folds_handled() -> None:
    from repro.core.classifier import _cross_validation_estimate
    from repro.ml.naive_bayes import NaiveBayesClassifier
    from repro.text.vectorizer import SparseVector

    # 2 positives, 2 negatives: some folds may lose a class entirely
    vectors = [SparseVector({"p": 1.0})] * 2 + [SparseVector({"n": 1.0})] * 2
    labels = [1, 1, -1, -1]
    estimate = _cross_validation_estimate(
        NaiveBayesClassifier, vectors, labels, folds=4
    )
    assert 0.0 <= estimate.precision <= 1.0
