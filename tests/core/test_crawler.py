"""Integration tests for the focused crawler against the synthetic Web."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core import BingoConfig, FocusedCrawler, HierarchicalClassifier
from repro.core.crawler import SHARP, SOFT, PhaseSettings
from repro.core.ontology import TopicTree
from repro.storage.bulkloader import BulkLoader
from repro.storage.database import Database
from repro.text.features import TermSpace
from repro.text.tokenizer import tokenize_html
from repro.web import PageRole

from tests.core.conftest import fast_engine_config


def make_trained_classifier(web, config: BingoConfig) -> HierarchicalClassifier:
    """Train a single-topic classifier directly from web page contents."""
    tree = TopicTree.from_leaves(["databases"])
    classifier = HierarchicalClassifier(tree, config)
    space = TermSpace()

    def counts_for(page):
        html = web.renderer.render(page)
        doc = tokenize_html(html)
        from repro.text.features import AnalyzedDocument

        return {"term": space.extract(AnalyzedDocument(tokens=doc.tokens))}

    positives = [
        counts_for(p)
        for p in web.pages_by_topic("databases")
        if p.role == PageRole.PAPER
    ][:20]
    negatives = [counts_for(p) for p in web.negative_example_pages(20)]
    training = {"ROOT/databases": positives, "ROOT/OTHERS": negatives}
    for docs in training.values():
        for d in docs:
            classifier.ingest(d)
    classifier.train(training)
    return classifier


@pytest.fixture(scope="module")
def crawl_result(small_web):
    config = fast_engine_config()
    classifier = make_trained_classifier(small_web, config)
    database = Database(validate=True)
    loader = BulkLoader(database, batch_size=50)
    crawler = FocusedCrawler(
        small_web, classifier, config, loader=loader,
    )
    crawler.seed(
        small_web.seed_homepages(3), topic="ROOT/databases", priority=10.0
    )
    settings = PhaseSettings(
        name="test", focus=SOFT, tunnelling=True, fetch_budget=250,
    )
    stats = crawler.crawl(settings)
    return crawler, stats, database


class TestCrawlRun:
    def test_visits_and_stores_pages(self, crawl_result) -> None:
        crawler, stats, _ = crawl_result
        assert stats.visited_urls > 50
        assert 0 < stats.stored_pages <= stats.visited_urls
        assert stats.extracted_links > stats.stored_pages

    def test_simulated_time_advances(self, crawl_result) -> None:
        _, stats, _ = crawl_result
        assert stats.simulated_seconds > 0

    def test_documents_have_urls_and_topics(self, crawl_result) -> None:
        crawler, _, _ = crawl_result
        for doc in crawler.documents[:20]:
            assert doc.final_url.startswith("http://")
            assert doc.topic.startswith("ROOT/")

    def test_positively_classified_counted(self, crawl_result) -> None:
        crawler, stats, _ = crawl_result
        accepted = sum(
            1 for d in crawler.documents if not d.topic.endswith("/OTHERS")
        )
        assert stats.positively_classified == accepted
        assert accepted > 0

    def test_rows_reached_database(self, crawl_result) -> None:
        crawler, stats, database = crawl_result
        assert len(database["documents"]) == stats.stored_pages
        assert len(database["terms"]) > 0
        assert len(database["links"]) > 0

    def test_no_document_from_locked_host(self, crawl_result, small_web) -> None:
        crawler, _, _ = crawl_result
        for doc in crawler.documents:
            assert not small_web.hosts[doc.host].locked

    def test_no_media_documents_stored(self, crawl_result) -> None:
        crawler, stats, _ = crawl_result
        mimes = {doc.mime for doc in crawler.documents}
        assert "video/mpeg" not in mimes

    def test_trap_does_not_dominate(self, crawl_result) -> None:
        crawler, stats, _ = crawl_result
        trap_docs = [
            d for d in crawler.documents if "trap" in d.host
        ]
        # URL length cap kills the chain quickly
        assert len(trap_docs) < 25

    def test_duplicates_were_caught(self, crawl_result) -> None:
        crawler, stats, _ = crawl_result
        # aliases/copies in the web should trigger at least one stage
        assert crawler.dedup.stats.total_hits + stats.duplicates_skipped >= 0
        urls = [d.final_url for d in crawler.documents]
        assert len(urls) == len(set(urls)), "no page stored twice"

    def test_page_ids_unique_across_documents(self, crawl_result) -> None:
        crawler, _, _ = crawl_result
        page_ids = [d.page_id for d in crawler.documents if d.page_id is not None]
        assert len(page_ids) == len(set(page_ids))

    def test_depth_recorded(self, crawl_result) -> None:
        _, stats, _ = crawl_result
        assert stats.max_depth >= 2


class TestFocusRules:
    def run_crawl(self, web, focus: str, tunnelling: bool, budget: int = 150):
        config = fast_engine_config()
        classifier = make_trained_classifier(web, config)
        crawler = FocusedCrawler(web, classifier, config)
        crawler.seed(
            web.seed_homepages(3), topic="ROOT/databases", priority=10.0
        )
        settings = PhaseSettings(
            name="t", focus=focus, tunnelling=tunnelling, fetch_budget=budget,
        )
        return crawler, crawler.crawl(settings)

    def test_sharp_without_tunnelling_can_starve(self, small_web) -> None:
        """Paper section 3.3: with a strict focus and no tunnelling the
        crawler 'would quickly run out of links to be visited' when the
        seed neighbourhood is rejected -- the motivation for tunnelling."""
        _, sharp = self.run_crawl(small_web, SHARP, tunnelling=False)
        _, soft = self.run_crawl(small_web, SOFT, tunnelling=True)
        assert soft.visited_urls >= sharp.visited_urls
        assert soft.positively_classified >= sharp.positively_classified

    def test_tunnelling_reaches_more_pages(self, small_web) -> None:
        _, without = self.run_crawl(small_web, SHARP, tunnelling=False, budget=400)
        _, with_tunnel = self.run_crawl(small_web, SHARP, tunnelling=True, budget=400)
        assert (
            with_tunnel.positively_classified >= without.positively_classified
        )

    def test_max_depth_respected(self, small_web) -> None:
        config = fast_engine_config()
        classifier = make_trained_classifier(small_web, config)
        crawler = FocusedCrawler(small_web, classifier, config)
        crawler.seed(
            small_web.seed_homepages(2), topic="ROOT/databases", priority=10.0
        )
        settings = PhaseSettings(
            name="t", focus=SOFT, tunnelling=True, max_depth=2,
            fetch_budget=200,
        )
        stats = crawler.crawl(settings)
        assert stats.max_depth <= 2

    def test_domain_restriction_respected(self, small_web) -> None:
        config = fast_engine_config()
        classifier = make_trained_classifier(small_web, config)
        crawler = FocusedCrawler(small_web, classifier, config)
        seeds = small_web.seed_homepages(2)
        from repro.web.urls import parse_url

        allowed = frozenset(parse_url(u).domain for u in seeds)
        crawler.seed(seeds, topic="ROOT/databases", priority=10.0)
        settings = PhaseSettings(
            name="t", focus=SOFT, tunnelling=True,
            allowed_domains=allowed, fetch_budget=200,
        )
        crawler.crawl(settings)
        for doc in crawler.documents:
            domain = parse_url(doc.final_url).domain
            assert domain in allowed


class TestHostManagement:
    def test_bad_hosts_excluded_after_retries(self, small_web) -> None:
        config = fast_engine_config(max_retries=2)
        classifier = make_trained_classifier(small_web, config)
        crawler = FocusedCrawler(small_web, classifier, config)
        # force one university host to always fail
        host = next(
            h for h in small_web.hosts.values() if h.name.startswith("u")
        )
        old_rate = host.error_rate
        host.error_rate = 1.0
        try:
            urls = [
                p.url for p in small_web.pages if p.host == host.name
            ][:6]
            crawler.seed(urls, topic="ROOT/databases", priority=10.0)
            settings = PhaseSettings(name="t", focus=SOFT, fetch_budget=60)
            stats = crawler.crawl(settings)
            state = crawler._host_state(host.name)
            assert state.bad
            assert stats.fetch_errors >= config.max_retries
        finally:
            host.error_rate = old_rate
