"""Politeness-wait and link-storage fixes in the crawl hot path.

Two regressions guarded here: (1) ``_visit`` must *loop* until a host
slot and a domain slot are simultaneously free -- a single clock advance
can land on a moment where the host freed up but the domain is still
saturated (or several slots share one deadline); (2) ``_store_rows``
must disambiguate repeated link targets by position without the
quadratic ``list.count``-style scan it used per out-link.
"""

from __future__ import annotations

from collections import Counter

from repro.core import FocusedCrawler
from repro.core.crawler import CrawlStats, CrawledDocument, SOFT, PhaseSettings
from repro.core.frontier import QueueEntry
from repro.storage.bulkloader import BulkLoader
from repro.storage.database import Database
from repro.web.urls import parse_url

from tests.core.conftest import fast_engine_config
from tests.core.test_crawler import make_trained_classifier


def make_crawler(web, loader=None, **config_overrides) -> FocusedCrawler:
    config = fast_engine_config(**config_overrides)
    classifier = make_trained_classifier(web, config)
    return FocusedCrawler(web, classifier, config, loader=loader)


def visit(crawler, url: str) -> CrawlStats:
    stats = CrawlStats()
    phase = PhaseSettings(name="test", focus=SOFT, tunnelling=False,
                          fetch_budget=10)
    crawler._visit(
        QueueEntry(url=url, topic="ROOT/databases", priority=1.0, depth=0),
        phase, stats,
    )
    return stats


class TestPolitenessWait:
    def test_waits_past_every_busy_host_slot(self, small_web) -> None:
        """With capacity 1 and staggered deadlines, one advance is not
        enough: after the earliest slot expires the host is still full."""
        crawler = make_crawler(small_web, max_parallel_per_host=1)
        url = small_web.seed_homepages(1)[0]
        host = parse_url(url).host
        start = crawler.clock.now
        state = crawler._host_state(host)
        state.busy_until = [start + 5.0, start + 9.0]
        stats = visit(crawler, url)
        assert stats.visited_urls == 1
        assert crawler.clock.now >= start + 9.0
        assert stats.politeness_defers >= 2

    def test_waits_for_domain_after_host_frees(self, small_web) -> None:
        """Freeing the host slot must not bypass a saturated domain."""
        crawler = make_crawler(
            small_web, max_parallel_per_host=2, max_parallel_per_domain=2
        )
        url = small_web.seed_homepages(1)[0]
        parsed = parse_url(url)
        start = crawler.clock.now
        crawler._host_state(parsed.host).busy_until = [start + 2.0]
        crawler._domain_state(parsed.domain).busy_until = [
            start + 4.0, start + 8.0,
        ]
        stats = visit(crawler, url)
        assert stats.visited_urls == 1
        # the domain only has a free slot after its earliest deadline
        assert crawler.clock.now >= start + 4.0
        assert stats.politeness_defers >= 1

    def test_capacity_respected_at_fetch_time(self, small_web) -> None:
        """After the wait loop, both capacity checks must pass (the slot
        taken by this fetch may then fill them again)."""
        crawler = make_crawler(small_web, max_parallel_per_host=1)
        url = small_web.seed_homepages(1)[0]
        parsed = parse_url(url)
        start = crawler.clock.now
        crawler._host_state(parsed.host).busy_until = [
            start + 1.0, start + 1.0, start + 3.0,
        ]
        visit(crawler, url)
        state = crawler._host_state(parsed.host)
        # exactly the one slot belonging to the fetch we just issued
        assert len([t for t in state.busy_until if t > crawler.clock.now]) <= 1

    def test_no_wait_when_slots_free(self, small_web) -> None:
        crawler = make_crawler(small_web)
        url = small_web.seed_homepages(1)[0]
        stats = visit(crawler, url)
        assert stats.visited_urls == 1
        assert stats.politeness_defers == 0


class TestStoreRowsLinkPositions:
    def _document(self, out_urls: list[str]) -> CrawledDocument:
        return CrawledDocument(
            doc_id=0,
            url="http://src.example/page.html",
            final_url="http://src.example/page.html",
            page_id=None,
            host="src.example",
            ip="10.0.0.1",
            mime="text/html",
            size=100,
            title="source",
            depth=0,
            topic="ROOT/databases",
            confidence=0.5,
            counts={"term": Counter({"x": 1})},
            out_urls=out_urls,
            fetched_at=0.0,
        )

    class _FakeHtmlDoc:
        anchor_terms: dict = {}

    def _stored_links(self, web, out_urls: list[str]) -> list[str]:
        database = Database(validate=False)
        loader = BulkLoader(database, batch_size=10)
        crawler = make_crawler(web, loader=loader)
        crawler._store_rows(self._document(out_urls), self._FakeHtmlDoc())
        loader.flush_all()
        return [row["dst_url"] for row in database["links"].scan()]

    def test_first_occurrence_keeps_plain_url(self, small_web) -> None:
        links = self._stored_links(
            small_web,
            ["http://a.example/", "http://b.example/", "http://a.example/"],
        )
        assert links == [
            "http://a.example/",
            "http://b.example/",
            "http://a.example/#2",
        ]

    def test_every_repeat_gets_unique_position(self, small_web) -> None:
        target = "http://hub.example/page.html"
        links = self._stored_links(small_web, [target] * 5)
        assert links == [target] + [f"{target}#{i}" for i in range(1, 5)]
        assert len(set(links)) == 5

    def test_link_dense_page_stays_linear(self, small_web) -> None:
        """800 out-links (many repeated) store quickly and uniquely --
        the seen-set replaced a per-link quadratic scan."""
        out_urls = [
            f"http://hub{i % 40}.example/p{i % 80}.html" for i in range(800)
        ]
        links = self._stored_links(small_web, out_urls)
        assert len(links) == 800
        assert len(set(links)) == 800
