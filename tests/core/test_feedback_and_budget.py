"""Tests for the user-feedback step (2.6) and xi-alpha budget selection."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core import ArchetypeReview, BingoEngine
from repro.core.classifier import HierarchicalClassifier
from repro.core.config import BingoConfig
from repro.core.ontology import TopicTree

from tests.core.conftest import fast_engine_config


class TestArchetypeReview:
    @pytest.fixture()
    def engine_after_learning(self, small_web):
        engine = BingoEngine.for_portal(
            small_web, config=fast_engine_config()
        )
        engine.run_learning_phase()
        return engine

    def test_confirm_protects(self, engine_after_learning) -> None:
        engine = engine_after_learning
        topic = "ROOT/databases"
        promoted = [
            r for r in engine.training[topic].values()
            if r.doc_id is not None and not r.protected
        ]
        assert promoted, "learning phase should have promoted archetypes"
        target = promoted[0]

        def reviewer(topic_name, documents):
            return ArchetypeReview(confirmed={target.doc_id})

        changed = engine.apply_archetype_review(reviewer, retrain=False)
        assert changed >= 1
        assert target.protected

    def test_reject_removes(self, engine_after_learning) -> None:
        engine = engine_after_learning
        topic = "ROOT/databases"
        promoted_ids = {
            r.doc_id for r in engine.training[topic].values()
            if r.doc_id is not None
        }
        victim = next(iter(promoted_ids))

        def reviewer(topic_name, documents):
            return ArchetypeReview(rejected={victim})

        engine.apply_archetype_review(reviewer, retrain=False)
        remaining = {
            r.doc_id for r in engine.training[topic].values()
            if r.doc_id is not None
        }
        assert victim not in remaining

    def test_trim_replaces_counts(self, engine_after_learning) -> None:
        engine = engine_after_learning
        topic = "ROOT/databases"
        record = next(
            r for r in engine.training[topic].values()
            if r.doc_id is not None
        )
        new_counts = {"term": Counter({"database": 5, "query": 3})}

        def reviewer(topic_name, documents):
            return ArchetypeReview(trimmed={record.doc_id: new_counts})

        engine.apply_archetype_review(reviewer, retrain=False)
        assert record.counts == new_counts

    def test_none_review_is_noop(self, engine_after_learning) -> None:
        engine = engine_after_learning
        changed = engine.apply_archetype_review(
            lambda topic, documents: None, retrain=False
        )
        assert changed == 0

    def test_needs_feedback_property(self, small_web) -> None:
        engine = BingoEngine.for_portal(
            small_web, config=fast_engine_config()
        )
        # before any crawl, no archetypes -> feedback advisable
        assert engine.needs_feedback

    def test_reviewer_invoked_from_run(self, small_web) -> None:
        calls: list[str] = []

        def reviewer(topic_name, documents):
            calls.append(topic_name)
            return None

        engine = BingoEngine.for_portal(
            small_web, config=fast_engine_config()
        )
        engine.run(
            harvesting_fetch_budget=50, archetype_reviewer=reviewer
        )
        assert calls == ["ROOT/databases"]


class TestAdaptiveFeatureBudget:
    def make_training(self):
        import numpy as np

        rng = np.random.default_rng(3)
        vocab = [f"t{i}" for i in range(40)]
        noise = [f"n{i}" for i in range(40)]

        def docs(words, n):
            out = []
            for _ in range(n):
                counts = Counter()
                for _ in range(12):
                    counts[words[int(rng.integers(len(words)))]] += 1
                out.append({"term": counts})
            return out

        return {
            "ROOT/topic": docs(vocab, 20),
            "ROOT/OTHERS": docs(noise, 20),
        }

    def test_budget_candidates_chosen_by_xialpha(self) -> None:
        tree = TopicTree.from_leaves(["topic"])
        config = BingoConfig(
            tf_preselection=500,
            selected_features=100,
            feature_budget_candidates=(5, 40, 100),
        )
        classifier = HierarchicalClassifier(tree, config)
        training = self.make_training()
        for docs in training.values():
            for doc in docs:
                classifier.ingest(doc)
        classifier.train(training)
        member = classifier.models["ROOT/topic"].members[0]
        assert member.feature_budget in (5, 40, 100)
        assert len(member.features) <= member.feature_budget

    def test_fixed_budget_used_when_no_candidates(self) -> None:
        tree = TopicTree.from_leaves(["topic"])
        config = BingoConfig(tf_preselection=500, selected_features=30)
        classifier = HierarchicalClassifier(tree, config)
        training = self.make_training()
        for docs in training.values():
            for doc in docs:
                classifier.ingest(doc)
        classifier.train(training)
        member = classifier.models["ROOT/topic"].members[0]
        assert member.feature_budget == 30
