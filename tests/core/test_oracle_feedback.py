"""Oracle user feedback between phases improves the harvest (paper 2.6).

A simulated user (an oracle that knows the generator's true page topics)
reviews the learning phase's archetypes: impostors are rejected, true
ones confirmed.  The subsequent harvest should be at least as precise as
an unreviewed run on the same Web.
"""

from __future__ import annotations

import pytest

from repro.core import ArchetypeReview, BingoEngine
from repro.web import SyntheticWeb, WebGraphConfig

from tests.core.conftest import fast_engine_config


@pytest.fixture(scope="module")
def drifty_web() -> SyntheticWeb:
    """A Web with heterogeneous researcher pages (drift pressure)."""
    return SyntheticWeb.generate(
        WebGraphConfig(
            seed=43, target_researchers=50, other_researchers=25,
            universities=12, hubs_per_topic=3,
            background_hosts_per_category=3, pages_per_background_host=3,
            directory_pages_per_category=4,
            interdisciplinary_rate=0.4,
            vocab_sibling_overlap=0.45,
        )
    )


def run_with(web, reviewer):
    engine = BingoEngine.for_portal(
        web,
        config=fast_engine_config(
            learning_fetch_budget=120, negative_examples=12,
            selected_features=250,
        ),
    )
    engine.run(harvesting_fetch_budget=300, archetype_reviewer=reviewer)
    target = web.config.target_topic
    accepted = [
        doc for doc in engine.crawler.documents
        if doc.topic == f"ROOT/{target}" and doc.page_id is not None
    ]
    if not accepted:
        return engine, 1.0
    correct = sum(
        1 for doc in accepted
        if web.pages[doc.page_id].topic == target
    )
    return engine, correct / len(accepted)


def oracle_reviewer(web):
    target = web.config.target_topic

    def reviewer(topic, documents):
        review = ArchetypeReview()
        for doc in documents:
            if doc.page_id is None:
                continue
            if web.pages[doc.page_id].topic == target:
                review.confirmed.add(doc.doc_id)
            else:
                review.rejected.add(doc.doc_id)
        return review

    return reviewer


def test_oracle_feedback_never_hurts_precision(drifty_web) -> None:
    _, baseline_precision = run_with(drifty_web, reviewer=None)
    engine, reviewed_precision = run_with(
        drifty_web, reviewer=oracle_reviewer(drifty_web)
    )
    assert reviewed_precision >= baseline_precision - 0.02


def test_oracle_feedback_purifies_training_set(drifty_web) -> None:
    engine, _ = run_with(drifty_web, reviewer=oracle_reviewer(drifty_web))
    target = drifty_web.config.target_topic
    promoted = [
        record for record in engine.training[f"ROOT/{target}"].values()
        if record.doc_id is not None
    ]
    # Impostors present at review time were removed; later (harvest-time)
    # promotions may reintroduce a few, but the reviewed set stays clean
    # enough to matter.
    impure = sum(
        1 for record in promoted
        if drifty_web.pages[
            engine.crawler.documents[record.doc_id].page_id
        ].topic != target
    )
    assert impure <= max(1, len(promoted) // 4)
