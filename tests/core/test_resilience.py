"""Failure-injection tests: the crawl survives a hostile Web.

The paper's crawl-management hardening (section 4.2) exists because the
real Web is hostile: slow hosts, 5xx storms, dead DNS, traps.  These
tests crank the failure knobs far beyond realistic levels and assert
the engine still completes and makes progress.
"""

from __future__ import annotations

import pytest

from repro.core import BingoEngine
from repro.web import SyntheticWeb, WebGraphConfig

from tests.core.conftest import fast_engine_config


def hostile_web(seed: int = 71, **overrides) -> SyntheticWeb:
    defaults = dict(
        seed=seed,
        target_researchers=40, other_researchers=10, universities=10,
        hubs_per_topic=3, background_hosts_per_category=3,
        pages_per_background_host=3, directory_pages_per_category=4,
        slow_host_rate=0.35,   # a third of hosts time out frequently
        error_host_rate=0.25,  # a quarter throw 5xx
    )
    defaults.update(overrides)
    return SyntheticWeb.generate(WebGraphConfig(**defaults))


class TestHostileWeb:
    def test_crawl_completes_and_progresses(self) -> None:
        web = hostile_web()
        engine = BingoEngine.for_portal(web, config=fast_engine_config())
        report = engine.run(harvesting_fetch_budget=250)
        total = report.total
        assert total.stored_pages > 20
        assert total.positively_classified > 0
        assert total.fetch_errors > 0  # failures genuinely happened

    def test_bad_hosts_get_excluded(self) -> None:
        web = hostile_web(seed=73)
        engine = BingoEngine.for_portal(web, config=fast_engine_config())
        engine.run(harvesting_fetch_budget=250)
        bad = [
            host for host, state in engine.crawler._hosts.items()
            if state.bad
        ]
        assert bad, "persistent failures should blacklist some hosts"

    def test_retries_happen_before_blacklisting(self) -> None:
        web = hostile_web(seed=73)
        engine = BingoEngine.for_portal(web, config=fast_engine_config())
        report = engine.run(harvesting_fetch_budget=250)
        total_retries = sum(p.stats.retries for p in report.phases)
        assert total_retries > 0

    def test_all_dns_flaky_still_resolves(self) -> None:
        """Every DNS server times out half the time; the multi-server
        resend strategy still gets answers."""
        web = hostile_web(seed=79, slow_host_rate=0.0, error_host_rate=0.0)
        engine = BingoEngine.for_portal(web, config=fast_engine_config())
        for server in engine.crawler.resolver.servers:
            server.timeout_rate = 0.5
        report = engine.run(harvesting_fetch_budget=150)
        assert report.total.stored_pages > 20
        assert engine.crawler.resolver.timeouts > 0

    def test_seed_host_completely_down_raises_cleanly(self) -> None:
        from repro.errors import CrawlError

        web = hostile_web(seed=83, slow_host_rate=0.0, error_host_rate=0.0)
        engine = BingoEngine.for_portal(web, config=fast_engine_config())
        for urls in engine.seeds.values():
            for url in urls:
                host = url.split("/")[2]
                web.hosts[host].error_rate = 1.0
        with pytest.raises(CrawlError):
            engine.bootstrap()
