"""Portal generation over a *nested* topic tree (paper Figure 2).

The engine is handed a two-level ontology -- research/{databases,
datamining} -- so classification descends ROOT -> research -> leaf.  The
inner "research" model trains on the union of its children's documents
(handled by the classifier's subtree gathering).
"""

from __future__ import annotations

import pytest

from repro.core import BingoEngine
from repro.core.ontology import TopicTree

from tests.core.conftest import fast_engine_config


@pytest.fixture(scope="module")
def nested_run(small_web):
    tree = TopicTree.from_nested(
        {"research": {"databases": {}, "datamining": {}}}
    )
    seeds = {
        "ROOT/research/databases": small_web.seed_homepages(
            3, topic="databases"
        ),
        "ROOT/research/datamining": small_web.seed_homepages(
            3, topic="datamining"
        ),
    }
    engine = BingoEngine(
        small_web, tree, seeds,
        config=fast_engine_config(learning_fetch_budget=160),
    )
    report = engine.run(harvesting_fetch_budget=500)
    return engine, report


class TestNestedPortal:
    def test_models_exist_at_both_levels(self, nested_run) -> None:
        engine, _ = nested_run
        assert "ROOT/research" in engine.classifier.models
        assert "ROOT/research/databases" in engine.classifier.models
        assert "ROOT/research/datamining" in engine.classifier.models

    def test_documents_descend_to_leaves(self, nested_run) -> None:
        engine, _ = nested_run
        leaf_docs = [
            doc for doc in engine.crawler.documents
            if doc.topic in (
                "ROOT/research/databases", "ROOT/research/datamining",
            )
        ]
        assert len(leaf_docs) > 10

    def test_mid_level_others_catches_oddballs(self, nested_run) -> None:
        """Research-y documents fitting neither leaf land in
        research/OTHERS; true background lands in ROOT/OTHERS."""
        engine, _ = nested_run
        topics = {doc.topic for doc in engine.crawler.documents}
        assert "ROOT/OTHERS" in topics

    def test_classification_paths_record_descent(self, nested_run) -> None:
        """Every accepted step in a result path is a child of the
        previous one (structural invariant of top-down descent)."""
        engine, _ = nested_run
        checked = 0
        for doc in engine.crawler.documents[:80]:
            result = engine.classifier.classify(doc.counts)
            previous = "ROOT"
            for node, confidence in result.path:
                assert node.startswith(previous + "/")
                assert confidence > 0 or confidence == result.path[-1][1]
                previous = node
            if len(result.path) == 2:
                checked += 1
        assert checked > 0, "some documents descend two levels"

    def test_leaf_assignments_mostly_correct(self, nested_run, small_web) -> None:
        engine, _ = nested_run
        correct = total = 0
        for label in ("databases", "datamining"):
            for doc in engine.crawler.documents:
                if doc.topic != f"ROOT/research/{label}":
                    continue
                if doc.page_id is None:
                    continue
                total += 1
                if small_web.pages[doc.page_id].topic == label:
                    correct += 1
        assert total > 10
        assert correct / total >= 0.75
