"""Crawler extras: domain politeness, logging rows, format conversion,
and whole-run determinism."""

from __future__ import annotations

import pytest

from repro.core import BingoEngine, FocusedCrawler
from repro.core.crawler import SOFT, PhaseSettings
from repro.storage.bulkloader import BulkLoader
from repro.storage.database import Database

from tests.core.conftest import fast_engine_config
from tests.core.test_crawler import make_trained_classifier


@pytest.fixture(scope="module")
def logged_crawl(small_web):
    config = fast_engine_config()
    classifier = make_trained_classifier(small_web, config)
    database = Database(validate=True)
    loader = BulkLoader(database, batch_size=25)
    crawler = FocusedCrawler(small_web, classifier, config, loader=loader)
    crawler.seed(
        small_web.seed_homepages(3), topic="ROOT/databases", priority=10.0
    )
    stats = crawler.crawl(
        PhaseSettings(name="t", focus=SOFT, tunnelling=True, fetch_budget=200)
    )
    return crawler, stats, database


class TestStoredRows:
    def test_crawl_log_has_one_row_per_visit(self, logged_crawl) -> None:
        crawler, stats, database = logged_crawl
        assert len(database["crawl_log"]) == stats.visited_urls
        statuses = {row["status"] for row in database["crawl_log"].scan()}
        assert "ok" in statuses

    def test_anchor_text_rows_stored(self, logged_crawl) -> None:
        _, _, database = logged_crawl
        rows = database["anchor_texts"].scan()
        assert rows, "crawled pages carry anchor texts"
        for row in rows[:20]:
            assert row["tf"] >= 1
            assert row["dst_url"].startswith("http")

    def test_formats_converted_during_crawl(self, logged_crawl) -> None:
        crawler, _, _ = logged_crawl
        formats = crawler.converted_formats
        assert formats["html"] > 0
        # the synthetic web publishes papers in several formats
        assert sum(
            formats[name] for name in ("pdf", "word", "powerpoint", "archive")
        ) > 0

    def test_non_html_documents_classified(self, logged_crawl, small_web) -> None:
        """PDF/Word/slides count for recall (paper 2.2)."""
        crawler, _, _ = logged_crawl
        non_html = [
            d for d in crawler.documents if d.mime != "text/html"
        ]
        assert non_html
        accepted = [
            d for d in non_html if not d.topic.endswith("/OTHERS")
        ]
        assert accepted, "some converted documents classify positively"


class TestDomainPoliteness:
    def test_domain_cap_limits_parallelism(self, small_web) -> None:
        config = fast_engine_config(
            max_parallel_per_host=50, max_parallel_per_domain=1,
        )
        classifier = make_trained_classifier(small_web, config)
        crawler = FocusedCrawler(small_web, classifier, config)
        # seed many URLs of one registrable domain
        urls = [
            p.url for p in small_web.pages if p.host.endswith("edu.example")
        ][:30]
        crawler.seed(urls, topic="ROOT/databases", priority=10.0)
        crawler.crawl(
            PhaseSettings(name="t", focus=SOFT, fetch_budget=30)
        )
        state = crawler._domain_state("edu.example")
        # never more than one concurrent fetch was in flight per domain:
        # the busy list is pruned each check, so it stays tiny
        assert len(state.busy_until) <= 1 + 1  # current + just-finished


class TestDeterminism:
    def test_identical_runs_store_identical_documents(self, small_web) -> None:
        def run():
            engine = BingoEngine.for_portal(
                small_web, config=fast_engine_config()
            )
            engine.run(harvesting_fetch_budget=120)
            return [d.final_url for d in engine.crawler.documents]

        assert run() == run()
