"""Cross-layer consistency: in-memory documents vs database rows."""

from __future__ import annotations

import pytest

from repro.core import BingoEngine

from tests.core.conftest import fast_engine_config


@pytest.fixture(scope="module")
def consistent_run(small_web):
    engine = BingoEngine.for_portal(
        small_web, config=fast_engine_config(validate_storage=True)
    )
    report = engine.run(harvesting_fetch_budget=200)
    return engine, report


class TestEngineConsistency:
    def test_doc_ids_contiguous(self, consistent_run) -> None:
        engine, _ = consistent_run
        ids = [doc.doc_id for doc in engine.crawler.documents]
        assert ids == list(range(len(ids)))

    def test_database_mirrors_memory(self, consistent_run) -> None:
        engine, report = consistent_run
        documents = engine.database["documents"]
        assert len(documents) == len(engine.crawler.documents)
        for doc in engine.crawler.documents[:30]:
            row = documents.get(doc.doc_id)
            assert row is not None
            assert row["url"] == doc.url
            assert row["topic"] == doc.topic
            assert row["confidence"] == pytest.approx(doc.confidence)
            assert row["page_id"] == doc.page_id

    def test_stored_pages_match_report(self, consistent_run) -> None:
        engine, report = consistent_run
        assert report.total.stored_pages == len(engine.crawler.documents)

    def test_term_rows_match_counts(self, consistent_run) -> None:
        engine, _ = consistent_run
        terms = engine.database["terms"]
        doc = engine.crawler.documents[0]
        rows = terms.lookup(("doc_id",), doc.doc_id)
        stored = {row["term"]: row["tf"] for row in rows}
        expected = {t: int(c) for t, c in doc.counts["term"].items()}
        assert stored == expected

    def test_confidences_finite(self, consistent_run) -> None:
        import math

        engine, _ = consistent_run
        for doc in engine.crawler.documents:
            assert math.isfinite(doc.confidence)

    def test_crawl_log_covers_all_documents(self, consistent_run) -> None:
        engine, report = consistent_run
        log = engine.database["crawl_log"]
        ok_rows = log.lookup(("status",), "ok")
        # every stored document followed a successful fetch; retries and
        # errors add further rows
        assert len(ok_rows) >= report.total.stored_pages
        assert len(log) == report.total.visited_urls
