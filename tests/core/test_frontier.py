"""Tests for the crawl frontier."""

from __future__ import annotations

import pytest

from repro.core.frontier import CrawlFrontier, QueueEntry


def entry(url: str, topic: str = "t", priority: float = 1.0,
          depth: int = 0, tunnelled: int = 0) -> QueueEntry:
    return QueueEntry(
        url=url, topic=topic, priority=priority, depth=depth,
        tunnelled=tunnelled,
    )


class TestPushPop:
    def test_pop_returns_highest_priority(self) -> None:
        frontier = CrawlFrontier()
        frontier.push(entry("http://a/", priority=0.2))
        frontier.push(entry("http://b/", priority=0.9))
        frontier.push(entry("http://c/", priority=0.5))
        assert frontier.pop().url == "http://b/"
        assert frontier.pop().url == "http://c/"
        assert frontier.pop().url == "http://a/"
        assert frontier.pop() is None

    def test_fifo_within_equal_priority(self) -> None:
        frontier = CrawlFrontier()
        for i in range(5):
            frontier.push(entry(f"http://x{i}/", priority=1.0))
        popped = [frontier.pop().url for _ in range(5)]
        assert popped == [f"http://x{i}/" for i in range(5)]

    def test_duplicate_urls_dropped(self) -> None:
        frontier = CrawlFrontier()
        assert frontier.push(entry("http://a/"))
        assert not frontier.push(entry("http://a/", priority=9.0))
        assert frontier.duplicate_drops == 1
        assert len(frontier) == 1

    def test_priorities_compete_across_topics(self) -> None:
        frontier = CrawlFrontier()
        frontier.push(entry("http://a/", topic="t1", priority=0.3))
        frontier.push(entry("http://b/", topic="t2", priority=0.8))
        assert frontier.pop().topic == "t2"

    def test_has_seen(self) -> None:
        frontier = CrawlFrontier()
        frontier.push(entry("http://a/"))
        assert frontier.has_seen("http://a/")
        assert not frontier.has_seen("http://b/")

    def test_invalid_limits_rejected(self) -> None:
        with pytest.raises(ValueError):
            CrawlFrontier(incoming_limit=0)


class TestBounds:
    def test_incoming_overflow_evicts_worst(self) -> None:
        frontier = CrawlFrontier(incoming_limit=3, outgoing_limit=3)
        for i in range(5):
            frontier.push(entry(f"http://x{i}/", priority=float(i)))
        assert frontier.evictions == 2
        popped = []
        while (e := frontier.pop()) is not None:
            popped.append(e.priority)
        # the two lowest-priority entries (0.0, 1.0) were evicted
        assert popped == [4.0, 3.0, 2.0]

    def test_pending_accounting(self) -> None:
        frontier = CrawlFrontier()
        frontier.push(entry("http://a/", topic="t1"))
        frontier.push(entry("http://b/", topic="t2"))
        assert frontier.pending_for("t1") == 1
        assert frontier.pending_for("nope") == 0
        assert len(frontier) == 2
        assert frontier.topics == ["t1", "t2"]


class TestDnsPrefetch:
    def test_prefetch_called_on_refill(self) -> None:
        warmed: list[str] = []
        frontier = CrawlFrontier(prefetch=lambda url: warmed.append(url) or True)
        frontier.push(entry("http://a/"))
        frontier.pop()
        assert warmed == ["http://a/"]

    def test_unresolvable_urls_dropped(self) -> None:
        frontier = CrawlFrontier(prefetch=lambda url: "bad" not in url)
        frontier.push(entry("http://bad.example/"))
        frontier.push(entry("http://good.example/", priority=0.1))
        popped = frontier.pop()
        assert popped is not None
        assert popped.url == "http://good.example/"
        assert frontier.dns_drops == 1
        assert frontier.pop() is None

    def test_refill_batch_limits_prefetches(self) -> None:
        warmed: list[str] = []
        frontier = CrawlFrontier(
            refill_batch=2, prefetch=lambda url: warmed.append(url) or True
        )
        for i in range(10):
            frontier.push(entry(f"http://x{i}/"))
        frontier.pop()
        # one refill moved at most refill_batch URLs
        assert len(warmed) == 2


class _Clock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now


class TestDeferredEntries:
    def make(self, now: float = 0.0) -> tuple[CrawlFrontier, _Clock]:
        clock = _Clock(now)
        return CrawlFrontier(now=lambda: clock.now), clock

    def test_not_before_gates_pop(self) -> None:
        frontier, clock = self.make()
        frontier.push(
            QueueEntry(url="http://a/", topic="t", priority=9.0, depth=0,
                       not_before=10.0)
        )
        assert frontier.pop() is None
        assert frontier.next_ready_at() == 10.0
        clock.now = 10.0
        popped = frontier.pop()
        assert popped is not None and popped.url == "http://a/"
        assert frontier.next_ready_at() is None

    def test_high_priority_cannot_jump_the_clock(self) -> None:
        frontier, clock = self.make()
        frontier.push(entry("http://low/", priority=0.1))
        frontier.push(
            QueueEntry(url="http://hot/", topic="t", priority=99.0, depth=0,
                       not_before=5.0)
        )
        assert frontier.pop().url == "http://low/"
        assert frontier.pop() is None
        clock.now = 5.0
        assert frontier.pop().url == "http://hot/"

    def test_requeue_bypasses_seen_set(self) -> None:
        frontier, clock = self.make()
        first = entry("http://a/")
        assert frontier.push(first)
        popped = frontier.pop()
        assert not frontier.push(popped), "push is once-per-URL"
        frontier.requeue(popped)
        assert frontier.pop().url == "http://a/"

    def test_len_and_pending_include_deferred(self) -> None:
        frontier, _clock = self.make()
        frontier.push(entry("http://a/", topic="t1"))
        frontier.push(
            QueueEntry(url="http://b/", topic="t1", priority=1.0, depth=0,
                       not_before=60.0)
        )
        assert len(frontier) == 2
        assert frontier.pending_for("t1") == 2

    def test_deferred_released_in_ready_order(self) -> None:
        frontier, clock = self.make()
        for i, ready in enumerate([30.0, 10.0, 20.0]):
            frontier.push(
                QueueEntry(url=f"http://x{i}/", topic="t", priority=1.0,
                           depth=0, not_before=ready)
            )
        clock.now = 15.0
        assert frontier.pop().url == "http://x1/"
        assert frontier.pop() is None
        clock.now = 30.0
        assert {frontier.pop().url, frontier.pop().url} == {
            "http://x0/", "http://x2/"
        }


class TestSnapshotRestore:
    def test_round_trip_preserves_pop_order(self) -> None:
        clock = _Clock(0.0)
        frontier = CrawlFrontier(now=lambda: clock.now)
        for i in range(8):
            frontier.push(
                entry(f"http://x{i}/", topic=f"t{i % 2}",
                      priority=float((i * 5) % 7))
            )
        frontier.push(
            QueueEntry(url="http://later/", topic="t0", priority=50.0,
                       depth=0, not_before=40.0)
        )
        frontier.pop()  # exercise refill/outgoing state before snapshot

        state = frontier.snapshot()
        restored = CrawlFrontier(now=lambda: clock.now)
        restored.restore(state)
        assert len(restored) == len(frontier)
        assert restored.has_seen("http://x0/")

        order_a, order_b = [], []
        clock.now = 40.0
        while (e := frontier.pop()) is not None:
            order_a.append(e.url)
        while (e := restored.pop()) is not None:
            order_b.append(e.url)
        assert order_a == order_b
        assert "http://later/" in order_a

    def test_snapshot_is_json_clean(self) -> None:
        import json

        frontier = CrawlFrontier()
        frontier.push(entry("http://a/"))
        blob = json.dumps(frontier.snapshot())
        restored = CrawlFrontier()
        restored.restore(json.loads(blob))
        assert restored.pop().url == "http://a/"

    def test_deferred_heap_round_trip_preserves_release_order(self) -> None:
        """A restored frontier releases and pops deferred entries in the
        exact original order -- including ``not_before`` ties, whose
        order is carried by the heap's admission sequence numbers."""
        clock = _Clock(0.0)
        frontier = CrawlFrontier(now=lambda: clock.now)
        # three tie groups, interleaved admissions, mixed priorities:
        # within a released batch pops go by priority, and the snapshot
        # must not perturb either ordering
        ready_ats = [20.0, 10.0, 20.0, 10.0, 30.0, 10.0, 20.0, 30.0]
        for i, ready in enumerate(ready_ats):
            frontier.push(
                QueueEntry(url=f"http://d{i}/", topic="t",
                           priority=float(i % 3), depth=0,
                           not_before=ready)
            )
        frontier.push(entry("http://ready/", priority=0.5))
        assert frontier.deferred_total == len(ready_ats)

        state = frontier.snapshot()
        restored = CrawlFrontier(now=lambda: clock.now)
        restored.restore(state)
        assert restored._deferred_counts == frontier._deferred_counts
        assert restored.next_ready_at() == frontier.next_ready_at() == 10.0

        order_a, order_b = [], []
        for now in (10.0, 20.0, 30.0):
            clock.now = now
            while (e := frontier.pop()) is not None:
                order_a.append(e.url)
            while (e := restored.pop()) is not None:
                order_b.append(e.url)
        assert order_b == order_a
        assert len(order_a) == len(ready_ats) + 1
        assert restored.stats() == frontier.stats()

    def test_mid_release_snapshot_keeps_remaining_deferred_order(self) -> None:
        """Snapshotting after *some* deferred entries were released must
        keep the not-yet-released remainder (and the sequence counter)
        intact, so later releases tie-break identically."""
        clock = _Clock(0.0)
        frontier = CrawlFrontier(now=lambda: clock.now)
        for i in range(6):
            frontier.push(
                QueueEntry(url=f"http://d{i}/", topic="t", priority=1.0,
                           depth=0, not_before=10.0 * (1 + i % 2))
            )
        clock.now = 10.0
        first = frontier.pop()  # releases the 10.0 group
        assert first is not None

        state = frontier.snapshot()
        restored = CrawlFrontier(now=lambda: clock.now)
        restored.restore(state)
        assert restored._sequence == frontier._sequence

        clock.now = 20.0
        remaining_a, remaining_b = [], []
        while (e := frontier.pop()) is not None:
            remaining_a.append(e.url)
        while (e := restored.pop()) is not None:
            remaining_b.append(e.url)
        assert remaining_b == remaining_a


class TestStatsProtocol:
    def test_stats_keys_are_snake_case_floats(self) -> None:
        clock = _Clock(0.0)
        frontier = CrawlFrontier(now=lambda: clock.now)
        frontier.push(entry("http://a/"))
        frontier.push(entry("http://a/"))  # duplicate
        frontier.push(
            QueueEntry(url="http://b/", topic="t", priority=1.0, depth=0,
                       not_before=99.0)
        )
        stats = frontier.stats()
        assert stats == {
            "size": 2.0,
            "enqueued": 2.0,
            "duplicate_drops": 1.0,
            "evictions": 0.0,
            "dns_drops": 0.0,
            "deferred_total": 1.0,
        }
        assert all(isinstance(v, float) for v in stats.values())
        assert not hasattr(frontier, "counters"), (
            "the counters() integer alias was removed; use stats()"
        )


class TestDeferredCounts:
    """pending_for's per-topic deferred tally (no heap scan)."""

    def test_counts_track_admission_release_and_restore(self) -> None:
        clock = _Clock(0.0)
        frontier = CrawlFrontier(now=lambda: clock.now)
        for i in range(4):
            frontier.push(
                QueueEntry(url=f"http://a{i}/", topic="t1", priority=1.0,
                           depth=0, not_before=10.0)
            )
        frontier.push(
            QueueEntry(url="http://b/", topic="t2", priority=1.0, depth=0,
                       not_before=20.0)
        )
        frontier.push(entry("http://now/", topic="t1"))
        assert frontier.pending_for("t1") == 5
        assert frontier.pending_for("t2") == 1
        assert frontier.pending_for("t3") == 0

        clock.now = 10.0
        for _ in range(5):  # the four released plus the ready one
            assert frontier.pop() is not None
        assert frontier.pending_for("t1") == 0
        assert frontier.pending_for("t2") == 1
        assert frontier._deferred_counts["t1"] == 0

        state = frontier.snapshot()
        restored = CrawlFrontier(now=lambda: clock.now)
        restored.restore(state)
        assert restored.pending_for("t2") == 1
        assert restored._deferred_counts == {"t2": 1}
