"""Tests for the crawl frontier."""

from __future__ import annotations

import pytest

from repro.core.frontier import CrawlFrontier, QueueEntry


def entry(url: str, topic: str = "t", priority: float = 1.0,
          depth: int = 0, tunnelled: int = 0) -> QueueEntry:
    return QueueEntry(
        url=url, topic=topic, priority=priority, depth=depth,
        tunnelled=tunnelled,
    )


class TestPushPop:
    def test_pop_returns_highest_priority(self) -> None:
        frontier = CrawlFrontier()
        frontier.push(entry("http://a/", priority=0.2))
        frontier.push(entry("http://b/", priority=0.9))
        frontier.push(entry("http://c/", priority=0.5))
        assert frontier.pop().url == "http://b/"
        assert frontier.pop().url == "http://c/"
        assert frontier.pop().url == "http://a/"
        assert frontier.pop() is None

    def test_fifo_within_equal_priority(self) -> None:
        frontier = CrawlFrontier()
        for i in range(5):
            frontier.push(entry(f"http://x{i}/", priority=1.0))
        popped = [frontier.pop().url for _ in range(5)]
        assert popped == [f"http://x{i}/" for i in range(5)]

    def test_duplicate_urls_dropped(self) -> None:
        frontier = CrawlFrontier()
        assert frontier.push(entry("http://a/"))
        assert not frontier.push(entry("http://a/", priority=9.0))
        assert frontier.duplicate_drops == 1
        assert len(frontier) == 1

    def test_priorities_compete_across_topics(self) -> None:
        frontier = CrawlFrontier()
        frontier.push(entry("http://a/", topic="t1", priority=0.3))
        frontier.push(entry("http://b/", topic="t2", priority=0.8))
        assert frontier.pop().topic == "t2"

    def test_has_seen(self) -> None:
        frontier = CrawlFrontier()
        frontier.push(entry("http://a/"))
        assert frontier.has_seen("http://a/")
        assert not frontier.has_seen("http://b/")

    def test_invalid_limits_rejected(self) -> None:
        with pytest.raises(ValueError):
            CrawlFrontier(incoming_limit=0)


class TestBounds:
    def test_incoming_overflow_evicts_worst(self) -> None:
        frontier = CrawlFrontier(incoming_limit=3, outgoing_limit=3)
        for i in range(5):
            frontier.push(entry(f"http://x{i}/", priority=float(i)))
        assert frontier.evictions == 2
        popped = []
        while (e := frontier.pop()) is not None:
            popped.append(e.priority)
        # the two lowest-priority entries (0.0, 1.0) were evicted
        assert popped == [4.0, 3.0, 2.0]

    def test_pending_accounting(self) -> None:
        frontier = CrawlFrontier()
        frontier.push(entry("http://a/", topic="t1"))
        frontier.push(entry("http://b/", topic="t2"))
        assert frontier.pending_for("t1") == 1
        assert frontier.pending_for("nope") == 0
        assert len(frontier) == 2
        assert frontier.topics == ["t1", "t2"]


class TestDnsPrefetch:
    def test_prefetch_called_on_refill(self) -> None:
        warmed: list[str] = []
        frontier = CrawlFrontier(prefetch=lambda url: warmed.append(url) or True)
        frontier.push(entry("http://a/"))
        frontier.pop()
        assert warmed == ["http://a/"]

    def test_unresolvable_urls_dropped(self) -> None:
        frontier = CrawlFrontier(prefetch=lambda url: "bad" not in url)
        frontier.push(entry("http://bad.example/"))
        frontier.push(entry("http://good.example/", priority=0.1))
        popped = frontier.pop()
        assert popped is not None
        assert popped.url == "http://good.example/"
        assert frontier.dns_drops == 1
        assert frontier.pop() is None

    def test_refill_batch_limits_prefetches(self) -> None:
        warmed: list[str] = []
        frontier = CrawlFrontier(
            refill_batch=2, prefetch=lambda url: warmed.append(url) or True
        )
        for i in range(10):
            frontier.push(entry(f"http://x{i}/"))
        frontier.pop()
        # one refill moved at most refill_batch URLs
        assert len(warmed) == 2
