"""Tests for MI-based topic-specific feature selection."""

from __future__ import annotations

import math

import pytest

from repro.core.feature_selection import (
    mutual_information,
    select_features,
)


def docs(*term_lists):
    return [list(terms) for terms in term_lists]


class TestMutualInformation:
    def test_zero_when_any_count_zero(self) -> None:
        assert mutual_information(0, 5, 5, 10) == 0.0
        assert mutual_information(1, 0, 5, 10) == 0.0
        assert mutual_information(1, 5, 0, 10) == 0.0
        assert mutual_information(1, 5, 5, 0) == 0.0

    def test_positive_for_correlated_feature(self) -> None:
        # feature appears in all 5 topic docs, nowhere else (n=10)
        assert mutual_information(5, 5, 5, 10) > 0

    def test_value_matches_formula(self) -> None:
        value = mutual_information(4, 6, 5, 20)
        expected = (4 / 20) * math.log((4 / 20) / ((6 / 20) * (5 / 20)))
        assert value == pytest.approx(expected)

    def test_independent_feature_scores_zero(self) -> None:
        # P[X and V] == P[X]P[V]: X in half of topic and half of rest
        value = mutual_information(5, 10, 10, 20)
        assert value == pytest.approx(0.0, abs=1e-12)


class TestSelectFeatures:
    def test_discriminative_terms_rank_first(self) -> None:
        """The paper's example: 'theorem' discriminates math from
        agriculture/arts at the top level."""
        topic_docs = {
            "math": docs(
                ["theorem", "proof", "page"],
                ["theorem", "lemma", "page"],
                ["theorem", "proof", "lemma"],
            ),
            "agriculture": docs(
                ["tractor", "field", "page"],
                ["harvest", "field", "page"],
            ),
            "arts": docs(
                ["paint", "canvas", "page"],
                ["museum", "canvas", "page"],
            ),
        }
        ranked = select_features(topic_docs, "math")
        features = [score.feature for score in ranked]
        assert features[0] == "theorem"
        # 'page' occurs everywhere -> weak or absent
        assert "page" not in features[:3]

    def test_level_specific_selection(self) -> None:
        """'theorem' is useless between algebra and stochastics, where
        'field' discriminates (paper section 2.3)."""
        sub_docs = {
            "algebra": docs(
                ["theorem", "field", "group"],
                ["theorem", "field", "ring"],
            ),
            "stochastics": docs(
                ["theorem", "probability", "variance"],
                ["theorem", "probability", "process"],
            ),
        }
        ranked = select_features(sub_docs, "algebra")
        features = [score.feature for score in ranked]
        assert "field" in features[:2]
        assert "theorem" not in features  # MI == 0, filtered out

    def test_ranks_are_sequential(self) -> None:
        topic_docs = {
            "a": docs(["x", "y"], ["x", "z"]),
            "b": docs(["q"], ["r"]),
        }
        ranked = select_features(topic_docs, "a")
        assert [score.rank for score in ranked] == list(
            range(1, len(ranked) + 1)
        )

    def test_selected_features_cap(self) -> None:
        topic_docs = {
            "a": docs([f"t{i}" for i in range(100)]),
            "b": docs(["other"]),
        }
        ranked = select_features(topic_docs, "a", selected_features=10)
        assert len(ranked) == 10

    def test_tf_preselection_limits_candidates(self) -> None:
        # terms outside the most frequent `tf_preselection` never scored
        topic_docs = {
            "a": docs(["common"] * 5 + ["rare"]),
            "b": docs(["other", "other2"]),
        }
        ranked = select_features(topic_docs, "a", tf_preselection=1)
        features = [score.feature for score in ranked]
        assert features == ["common"]

    def test_unknown_topic_raises(self) -> None:
        with pytest.raises(KeyError):
            select_features({"a": docs(["x"])}, "zzz")

    def test_empty_topic_returns_nothing(self) -> None:
        assert select_features({"a": [], "b": docs(["x"])}, "a") == []

    def test_weights_descend(self) -> None:
        topic_docs = {
            "a": docs(["strong", "weak", "x"], ["strong", "y"], ["strong"]),
            "b": docs(["weak", "z"], ["other"]),
        }
        ranked = select_features(topic_docs, "a")
        weights = [score.weight for score in ranked]
        assert weights == sorted(weights, reverse=True)
