"""Multi-topic portal generation (the paper's Figure 2 setting).

The engine must keep sibling research topics apart: each topic gets its
own classifier trained against its competitors, and crawled documents
land in the right branch of the tree.
"""

from __future__ import annotations

import pytest

from repro.core import BingoEngine

from tests.core.conftest import fast_engine_config


@pytest.fixture(scope="module")
def multi_topic_run(small_web):
    # Three seeds per topic: with only two, a sibling pair of weak
    # classifiers can starve one branch (an instructive failure the
    # paper's "extremely small training data" remark anticipates).
    engine = BingoEngine.for_portal(
        small_web,
        topics=["databases", "datamining"],
        config=fast_engine_config(learning_fetch_budget=160),
        seed_count=3,
    )
    report = engine.run(harvesting_fetch_budget=600)
    return engine, report


class TestMultiTopicPortal:
    def test_both_topics_seeded_and_trained(self, multi_topic_run) -> None:
        engine, _ = multi_topic_run
        assert set(engine.seeds) == {"ROOT/databases", "ROOT/datamining"}
        assert "ROOT/databases" in engine.classifier.models
        assert "ROOT/datamining" in engine.classifier.models

    def test_both_topics_collect_documents(self, multi_topic_run) -> None:
        engine, _ = multi_topic_run
        databases = engine.ranked_results("ROOT/databases")
        datamining = engine.ranked_results("ROOT/datamining")
        assert len(databases) > 5
        assert len(datamining) > 5

    def test_assignments_match_true_topics(self, multi_topic_run, small_web) -> None:
        """Most accepted documents belong to their assigned topic."""
        engine, _ = multi_topic_run
        correct = total = 0
        for topic_label in ("databases", "datamining"):
            for doc in engine.ranked_results(f"ROOT/{topic_label}"):
                if doc.page_id is None:
                    continue
                total += 1
                if small_web.pages[doc.page_id].topic == topic_label:
                    correct += 1
        assert total > 10
        assert correct / total >= 0.8

    def test_cross_topic_confusion_is_limited(self, multi_topic_run, small_web) -> None:
        """Documents truly of topic A rarely land in topic B."""
        engine, _ = multi_topic_run
        confused = 0
        assigned = 0
        for doc in engine.crawler.documents:
            if doc.page_id is None or doc.topic.endswith("/OTHERS"):
                continue
            true_topic = small_web.pages[doc.page_id].topic
            if true_topic not in ("databases", "datamining"):
                continue
            assigned += 1
            if doc.topic != f"ROOT/{true_topic}":
                confused += 1
        assert assigned > 10
        assert confused / assigned < 0.25

    def test_archetypes_promoted_per_topic(self, multi_topic_run) -> None:
        engine, _ = multi_topic_run
        for topic in ("ROOT/databases", "ROOT/datamining"):
            promoted = [
                r for r in engine.training[topic].values()
                if r.doc_id is not None
            ]
            assert promoted, f"{topic} promoted no archetypes"
