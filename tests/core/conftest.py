"""Shared engine configuration for crawler/engine integration tests."""

from __future__ import annotations

from repro.core import BingoConfig


def fast_engine_config(**overrides) -> BingoConfig:
    defaults = dict(
        learning_fetch_budget=80,
        retrain_interval=50,
        negative_examples=15,
        selected_features=300,
        tf_preselection=1000,
    )
    defaults.update(overrides)
    return BingoConfig(**defaults)
