"""Integration tests for the full BINGO! engine."""

from __future__ import annotations

import pytest

from repro.core import BingoEngine
from repro.errors import CrawlError

from tests.core.conftest import fast_engine_config


@pytest.fixture(scope="module")
def portal_run(small_web):
    config = fast_engine_config()
    engine = BingoEngine.for_portal(small_web, config=config)
    report = engine.run(harvesting_fetch_budget=300)
    return engine, report


class TestPortalEngine:
    def test_two_phases_ran(self, portal_run) -> None:
        _, report = portal_run
        assert [phase.name for phase in report.phases] == [
            "learning", "harvesting",
        ]
        assert all(phase.stats.visited_urls > 0 for phase in report.phases)

    def test_learning_respects_seed_domains(self, portal_run, small_web) -> None:
        engine, report = portal_run
        learning = report.phases[0]
        seed_hosts = {
            url.split("/")[2]
            for urls in engine.seeds.values()
            for url in urls
        }
        seed_domains = {".".join(h.split(".")[-2:]) for h in sorted(seed_hosts)}
        for host in learning.stats.hosts_visited:
            assert ".".join(host.split(".")[-2:]) in seed_domains

    def test_harvesting_expands_beyond_seed_domains(self, portal_run) -> None:
        _, report = portal_run
        learning, harvesting = report.phases
        assert harvesting.stats.visited_hosts > learning.stats.visited_hosts

    def test_archetypes_were_promoted(self, portal_run) -> None:
        engine, report = portal_run
        assert engine.archetypes_added > 0
        assert engine.retrainings >= 1
        # archetype promotions are recorded in the database
        assert len(engine.database["archetypes"]) > 0

    def test_training_set_grew_beyond_seeds(self, portal_run) -> None:
        engine, _ = portal_run
        topic_records = engine.training["ROOT/databases"]
        assert len(topic_records) > 2  # two seed homepages originally

    def test_seeds_remain_protected(self, portal_run) -> None:
        engine, _ = portal_run
        seed_urls = set(engine.seeds["ROOT/databases"])
        training_urls = set(engine.training["ROOT/databases"])
        assert seed_urls <= training_urls

    def test_ranked_results_sorted_by_confidence(self, portal_run) -> None:
        engine, _ = portal_run
        docs = engine.ranked_results("ROOT/databases")
        confidences = [doc.confidence for doc in docs]
        assert confidences == sorted(confidences, reverse=True)
        assert len(docs) > 10

    def test_recall_against_registry(self, portal_run, small_web) -> None:
        """The crawl finds a good share of the registry's top authors."""
        engine, _ = portal_run
        registry = small_web.registry("databases")
        found = registry.found_authors(
            doc.final_url for doc in engine.crawler.documents
        )
        top10 = {r.author_id for r in registry.top_authors(10)}
        assert len(found & top10) >= 5

    def test_dblp_domain_never_crawled(self, portal_run) -> None:
        engine, _ = portal_run
        for doc in engine.crawler.documents:
            assert "dblp" not in doc.host

    def test_table1_row_shape(self, portal_run) -> None:
        _, report = portal_run
        row = report.table1_row()
        assert set(row) == {
            "visited_urls", "stored_pages", "extracted_links",
            "positively_classified", "visited_hosts", "max_crawling_depth",
        }
        assert row["visited_urls"] >= row["stored_pages"]

    def test_idf_statistics_filled(self, portal_run) -> None:
        engine, _ = portal_run
        stats = engine.classifier.vectorizers["term"].statistics
        assert stats.snapshot_size > 0


class TestExpertEngine:
    def test_expert_run_reaches_needles(self, small_expert_web) -> None:
        config = fast_engine_config(
            learning_fetch_budget=60, retrain_interval=40,
        )
        web = small_expert_web
        # seed from the ARIES hub and a couple of researcher pages, as the
        # paper seeds from hand-picked external search results
        seeds = web.hub_urls("aries")[-1:] + web.seed_homepages(2, topic="aries")
        engine = BingoEngine.for_expert(web, seeds, topic="aries", config=config)
        engine.run(harvesting_fetch_budget=400)
        crawled_urls = {doc.final_url for doc in engine.crawler.documents}
        assert crawled_urls & web.needle_urls(), "no needle page crawled"

    def test_harvest_before_bootstrap_rejected(self, small_web) -> None:
        engine = BingoEngine.for_portal(small_web, config=fast_engine_config())
        with pytest.raises(CrawlError):
            engine.run_harvesting_phase(fetch_budget=10)

    def test_bad_seed_url_raises(self, small_web) -> None:
        engine = BingoEngine.for_expert(
            small_web, ["http://nonexistent.example.zz/x"],
            topic="databases", config=fast_engine_config(),
        )
        with pytest.raises(CrawlError):
            engine.bootstrap()
