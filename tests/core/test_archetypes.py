"""Tests for archetype selection (paper section 3.2)."""

from __future__ import annotations

from repro.core.archetypes import select_archetypes


def test_union_of_confidence_and_authority_candidates() -> None:
    decision = select_archetypes(
        confidence_candidates=[(1, 0.9), (2, 0.8)],
        authority_candidates=[(3, 0.7), (2, 0.6)],
        training_confidences={100: 0.1},
        document_confidences={1: 0.9, 2: 0.8, 3: 0.75},
    )
    added = {doc_id: source for doc_id, _conf, source in decision.added}
    assert set(added) == {1, 2}  # cap = min(N_auth, N_conf) = 2
    assert added[2] == "both"
    assert added[1] == "confidence"


def test_cap_is_min_of_both_lists() -> None:
    decision = select_archetypes(
        confidence_candidates=[(i, 0.9) for i in range(10)],
        authority_candidates=[(99, 0.5)],
        training_confidences={},
        document_confidences={i: 0.9 for i in range(10)} | {99: 0.4},
    )
    assert len(decision.added) == 1  # min(1, 10)


def test_max_new_also_caps() -> None:
    decision = select_archetypes(
        confidence_candidates=[(i, 0.9) for i in range(10)],
        authority_candidates=[(i, 0.5) for i in range(10)],
        training_confidences={},
        document_confidences={i: 0.9 for i in range(10)},
        max_new=3,
    )
    assert len(decision.added) == 3


def test_mean_confidence_threshold_blocks_weak_candidates() -> None:
    decision = select_archetypes(
        confidence_candidates=[(1, 0.2), (2, 0.9)],
        authority_candidates=[(1, 0.5), (2, 0.4)],
        training_confidences={10: 0.5, 11: 0.7},  # mean 0.6
        document_confidences={1: 0.2, 2: 0.9},
    )
    assert decision.added_ids == [2]
    assert decision.previous_mean == 0.6


def test_threshold_can_be_disabled() -> None:
    decision = select_archetypes(
        confidence_candidates=[(1, 0.2), (2, 0.9)],
        authority_candidates=[(1, 0.5), (2, 0.4)],
        training_confidences={10: 0.5, 11: 0.7},
        document_confidences={1: 0.2, 2: 0.9},
        enforce_threshold=False,
    )
    assert set(decision.added_ids) == {1, 2}
    assert decision.removed == []


def test_existing_training_docs_not_re_added() -> None:
    decision = select_archetypes(
        confidence_candidates=[(10, 0.99)],
        authority_candidates=[(10, 0.9)],
        training_confidences={10: 0.9},
        document_confidences={10: 0.99},
    )
    assert decision.added == []


def test_laggards_removed_but_bounded_by_additions() -> None:
    decision = select_archetypes(
        confidence_candidates=[(1, 0.95)],
        authority_candidates=[(1, 0.9)],
        training_confidences={10: 0.05, 11: 0.06, 12: 0.9},  # mean ~0.34
        document_confidences={1: 0.95},
    )
    assert decision.added_ids == [1]
    # two laggards below the previous mean, but only one promotion
    assert len(decision.removed) == 1
    assert decision.removed[0] == 10  # the weakest first


def test_protected_docs_never_removed() -> None:
    decision = select_archetypes(
        confidence_candidates=[(1, 0.95)],
        authority_candidates=[(1, 0.9)],
        training_confidences={10: 0.01, 11: 0.8},
        document_confidences={1: 0.95},
        protected={10},
    )
    assert 10 not in decision.removed


def test_no_candidates_no_changes() -> None:
    decision = select_archetypes(
        confidence_candidates=[],
        authority_candidates=[],
        training_confidences={10: 0.5},
        document_confidences={},
    )
    assert decision.added == []
    assert decision.removed == []


def test_new_mean_reflects_additions() -> None:
    decision = select_archetypes(
        confidence_candidates=[(1, 1.0)],
        authority_candidates=[(1, 1.0)],
        training_confidences={10: 0.5},
        document_confidences={1: 1.0},
    )
    assert decision.new_mean == 0.75
