"""Phase-strategy tests: depth-first learning vs prioritised harvesting."""

from __future__ import annotations

import pytest

from repro.core import BingoEngine

from tests.core.conftest import fast_engine_config


class TestLearningPhaseStrategy:
    @pytest.fixture(scope="class")
    def learning_report(self, small_web):
        engine = BingoEngine.for_portal(
            small_web, config=fast_engine_config(learning_fetch_budget=100)
        )
        report = engine.run_learning_phase()
        return engine, report

    def test_depth_first_goes_deep_quickly(self, learning_report) -> None:
        """Depth-first priorities go deep within a small budget
        (breadth-first would sweep level by level)."""
        engine, report = learning_report
        assert report.stats.max_depth >= 3

    def test_depth_cap_respected(self, learning_report) -> None:
        engine, report = learning_report
        assert report.stats.max_depth <= engine.config.learning_max_depth
        for doc in engine.crawler.documents:
            assert doc.depth <= engine.config.learning_max_depth

    def test_learning_visits_few_hosts(self, learning_report) -> None:
        """Seed-domain restriction keeps the learning phase local."""
        _, report = learning_report
        assert report.stats.visited_hosts <= 25


class TestHarvestingPhaseStrategy:
    def test_harvest_orders_by_confidence(self, small_web) -> None:
        """Harvesting pops high-confidence links first: the first half of
        the harvest should contain a higher share of positively
        classified documents than the second half."""
        engine = BingoEngine.for_portal(
            small_web, config=fast_engine_config(learning_fetch_budget=100)
        )
        engine.run_learning_phase()
        before = len(engine.crawler.documents)
        engine.run_harvesting_phase(fetch_budget=300)
        harvest_docs = engine.crawler.documents[before:]
        assert len(harvest_docs) >= 100
        half = len(harvest_docs) // 2
        first = harvest_docs[:half]
        second = harvest_docs[half:]

        def accept_rate(docs):
            return sum(
                1 for d in docs if not d.topic.endswith("/OTHERS")
            ) / len(docs)

        assert accept_rate(first) >= accept_rate(second) - 0.05

    def test_time_budget_stops_harvest(self, small_web) -> None:
        engine = BingoEngine.for_portal(
            small_web, config=fast_engine_config(learning_fetch_budget=60)
        )
        engine.run_learning_phase()
        start = engine.crawler.clock.now
        report = engine.run_harvesting_phase(time_budget=30.0)
        elapsed = engine.crawler.clock.now - start
        # the crawl stops promptly after the simulated deadline (in-flight
        # tasks may overshoot by at most the pool drain)
        assert report.stats.simulated_seconds == pytest.approx(
            elapsed, rel=1e-9
        )
        assert elapsed < 30.0 + 120.0
