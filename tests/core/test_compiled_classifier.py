"""Parity and lifecycle tests for the compiled classification kernel.

The compiled per-level kernel (:mod:`repro.perf.compiled`) must be an
exact drop-in for the reference dict-walking decision phase: identical
topic assignments, paths, and confidences within 1e-9 across all five
decision-combination modes, including the batch entry points.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core import BingoEngine
from repro.core.classifier import HierarchicalClassifier
from repro.core.config import BingoConfig
from repro.core.ontology import TopicTree

from tests.core.conftest import fast_engine_config

MODES = ("single", "unanimous", "majority", "weighted", "best")
SPACES = ("term", "pair")


def topic_docs(vocab, n, seed, spaces=SPACES):
    rng = np.random.default_rng(seed)
    docs = []
    for _ in range(n):
        words: dict[str, int] = {}
        for _ in range(25):
            term = vocab[int(rng.integers(len(vocab)))]
            words[term] = words.get(term, 0) + 1
        docs.append({space: Counter(words) for space in spaces})
    return docs


def _vocab(prefix: str) -> list[str]:
    return [f"{prefix}_w{i}" for i in range(30)] + [
        f"shared{i}" for i in range(12)
    ]


@pytest.fixture(scope="module")
def nested_setup():
    """A two-level tree trained over two feature spaces, plus eval docs."""
    tree = TopicTree.from_nested(
        {"science": {"db": {}, "ml": {}}, "sports": {}}
    )
    config = BingoConfig(selected_features=80, tf_preselection=300)
    classifier = HierarchicalClassifier(tree, config)
    vocabs = {
        "ROOT/science": _vocab("sci"),
        "ROOT/science/db": _vocab("db"),
        "ROOT/science/ml": _vocab("ml"),
        "ROOT/sports": _vocab("sp"),
    }
    training = {
        topic: topic_docs(vocab, 18, seed=i + 1)
        for i, (topic, vocab) in enumerate(vocabs.items())
    }
    training["ROOT/OTHERS"] = topic_docs(_vocab("bg"), 18, seed=77)
    training["ROOT/science/OTHERS"] = topic_docs(_vocab("scibg"), 18, seed=78)
    for docs in training.values():
        for doc in docs:
            classifier.ingest(doc)
    classifier.train(training)
    eval_docs = []
    for i, vocab in enumerate(vocabs.values()):
        eval_docs.extend(topic_docs(vocab, 15, seed=100 + i))
    eval_docs.extend(topic_docs(_vocab("bg"), 10, seed=200))
    # a document whose terms hit no trained vocabulary at all
    eval_docs.append({space: Counter({"zzz": 3}) for space in SPACES})
    # a document missing one feature space entirely
    eval_docs.append({"term": Counter({"db_w1": 2, "db_w2": 1})})
    return classifier, eval_docs


class TestKernelParity:
    @pytest.mark.parametrize("mode", MODES)
    def test_classify_matches_reference(self, nested_setup, mode) -> None:
        classifier, eval_docs = nested_setup
        for doc in eval_docs:
            reference = classifier.classify_reference(doc, mode)
            compiled = classifier.classify(doc, mode)
            assert compiled.topic == reference.topic
            assert compiled.confidence == pytest.approx(
                reference.confidence, abs=1e-9
            )
            assert len(compiled.path) == len(reference.path)
            for (ct, cc), (rt, rc) in zip(compiled.path, reference.path):
                assert ct == rt
                assert cc == pytest.approx(rc, abs=1e-9)

    @pytest.mark.parametrize("mode", MODES)
    def test_classify_batch_matches_reference(self, nested_setup, mode) -> None:
        classifier, eval_docs = nested_setup
        batch = classifier.classify_batch(eval_docs, mode)
        for doc, result in zip(eval_docs, batch):
            reference = classifier.classify_reference(doc, mode)
            assert result.topic == reference.topic
            assert result.confidence == pytest.approx(
                reference.confidence, abs=1e-9
            )

    @pytest.mark.parametrize("mode", MODES)
    def test_confidence_for_batch_matches_decide(self, nested_setup, mode):
        classifier, eval_docs = nested_setup
        for topic in ("ROOT/science", "ROOT/science/db", "ROOT/sports"):
            confidences = classifier.confidence_for_batch(
                eval_docs, topic, mode
            )
            model = classifier.models[topic]
            for doc, confidence in zip(eval_docs, confidences):
                _pos, reference = model.decide(
                    classifier.vectorize(doc), mode,
                    classifier.config.acceptance_threshold,
                )
                assert confidence == pytest.approx(reference, abs=1e-9)

    def test_disabled_kernels_take_reference_path(self, nested_setup) -> None:
        _classifier, eval_docs = nested_setup
        tree = TopicTree.from_leaves(["db", "sports"])
        plain = HierarchicalClassifier(
            tree,
            BingoConfig(
                selected_features=50, tf_preselection=150,
                use_compiled_kernels=False,
            ),
        )
        training = {
            "ROOT/db": topic_docs(_vocab("db"), 12, seed=1),
            "ROOT/sports": topic_docs(_vocab("sp"), 12, seed=2),
            "ROOT/OTHERS": topic_docs(_vocab("bg"), 12, seed=3),
        }
        for docs in training.values():
            for doc in docs:
                plain.ingest(doc)
        plain.train(training)
        assert plain._kernel() is None
        probe = eval_docs[0]
        assert plain.classify(probe) == plain.classify_reference(probe)
        assert plain.classify_batch([probe]) == [
            plain.classify_reference(probe)
        ]


class TestKernelLifecycle:
    def test_kernel_recompiles_after_retrain(self) -> None:
        tree = TopicTree.from_leaves(["db", "sports"])
        config = BingoConfig(selected_features=50, tf_preselection=150)
        classifier = HierarchicalClassifier(tree, config)
        training = {
            "ROOT/db": topic_docs(_vocab("db"), 15, seed=1),
            "ROOT/sports": topic_docs(_vocab("sp"), 15, seed=2),
            "ROOT/OTHERS": topic_docs(_vocab("bg"), 15, seed=3),
        }
        for docs in training.values():
            for doc in docs:
                classifier.ingest(doc)
        classifier.train(training)
        first_version = classifier.model_version
        first_kernel = classifier._kernel()
        assert first_kernel is not None
        assert first_kernel.model_version == first_version
        assert classifier._kernel() is first_kernel  # cached while valid

        training["ROOT/db"] = training["ROOT/db"] + topic_docs(
            _vocab("db"), 5, seed=9
        )
        classifier.train(training)
        assert classifier.model_version == first_version + 1
        second_kernel = classifier._kernel()
        assert second_kernel is not first_kernel
        assert second_kernel.model_version == classifier.model_version
        probe = topic_docs(_vocab("db"), 3, seed=11)
        for doc in probe:
            reference = classifier.classify_reference(doc, "weighted")
            compiled = classifier.classify(doc, "weighted")
            assert compiled.topic == reference.topic
            assert compiled.confidence == pytest.approx(
                reference.confidence, abs=1e-9
            )

    def test_vector_cache_hits_and_snapshot_invalidation(self) -> None:
        tree = TopicTree.from_leaves(["db"])
        config = BingoConfig(selected_features=50, tf_preselection=150)
        classifier = HierarchicalClassifier(tree, config)
        training = {
            "ROOT/db": topic_docs(_vocab("db"), 15, seed=1),
            "ROOT/OTHERS": topic_docs(_vocab("bg"), 15, seed=3),
        }
        for docs in training.values():
            for doc in docs:
                classifier.ingest(doc)
        classifier.train(training)
        doc = topic_docs(_vocab("db"), 1, seed=5)[0]
        cache = classifier._vector_cache
        classifier.classify(doc)
        misses = cache.misses
        classifier.classify(doc)
        classifier.classify(doc)
        assert cache.misses == misses  # repeat docs served from cache
        assert cache.hits >= 2
        # a new idf snapshot changes the key and invalidates the entry
        classifier.refresh_idf()
        classifier.classify(doc)
        assert cache.misses == misses + 1

    def test_zero_cache_size_disables_caching(self) -> None:
        tree = TopicTree.from_leaves(["db"])
        config = BingoConfig(
            selected_features=50, tf_preselection=150, vector_cache_size=0
        )
        classifier = HierarchicalClassifier(tree, config)
        training = {
            "ROOT/db": topic_docs(_vocab("db"), 10, seed=1),
            "ROOT/OTHERS": topic_docs(_vocab("bg"), 10, seed=3),
        }
        for docs in training.values():
            for doc in docs:
                classifier.ingest(doc)
        classifier.train(training)
        doc = topic_docs(_vocab("db"), 1, seed=5)[0]
        classifier.classify(doc)
        classifier.classify(doc)
        assert len(classifier._vector_cache) == 0
        assert classifier._vector_cache.hits == 0


class TestEngineKernelLifecycle:
    def test_kernel_survives_multiple_retraining_points(self, small_web):
        """The engine retrains repeatedly; each retraining point must
        invalidate the compiled snapshot and the recompiled kernel must
        still match the reference path."""
        config = fast_engine_config(retrain_interval=25)
        engine = BingoEngine.for_portal(small_web, config=config)
        engine.run(harvesting_fetch_budget=200)
        assert engine.retrainings >= 2
        classifier = engine.classifier
        # at least one retraining changed the training set and retrained
        assert classifier.model_version >= 2
        kernel = classifier._kernel()
        assert kernel is not None
        assert kernel.model_version == classifier.model_version
        probe_docs = [
            doc.counts for doc in engine.crawler.documents[:25]
        ]
        for mode in MODES:
            for counts in probe_docs:
                reference = classifier.classify_reference(counts, mode)
                compiled = classifier.classify(counts, mode)
                assert compiled.topic == reference.topic
                assert compiled.confidence == pytest.approx(
                    reference.confidence, abs=1e-9
                )
