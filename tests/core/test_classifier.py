"""Tests for the hierarchical topic classifier."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.classifier import HierarchicalClassifier
from repro.core.config import BingoConfig
from repro.core.ontology import TopicTree
from repro.errors import TrainingError


def doc(words: dict[str, int], space: str = "term") -> dict[str, Counter]:
    return {space: Counter(words)}


def topic_docs(vocab: list[str], n: int, seed: int, extra=None):
    rng = np.random.default_rng(seed)
    docs = []
    for _ in range(n):
        words: dict[str, int] = {}
        for _ in range(10):
            term = vocab[int(rng.integers(len(vocab)))]
            words[term] = words.get(term, 0) + 1
        if extra:
            for term in extra:
                words[term] = words.get(term, 0) + 1
        docs.append(doc(words))
    return docs


@pytest.fixture(scope="module")
def flat_setup():
    """Two sibling topics + OTHERS, trained."""
    tree = TopicTree.from_leaves(["db", "sports"])
    config = BingoConfig(selected_features=50, tf_preselection=100)
    classifier = HierarchicalClassifier(tree, config)
    db_vocab = [f"db{i}" for i in range(15)]
    sports_vocab = [f"sp{i}" for i in range(15)]
    noise_vocab = [f"bg{i}" for i in range(15)]
    training = {
        "ROOT/db": topic_docs(db_vocab, 20, seed=1),
        "ROOT/sports": topic_docs(sports_vocab, 20, seed=2),
        "ROOT/OTHERS": topic_docs(noise_vocab, 20, seed=3),
    }
    for docs in training.values():
        for d in docs:
            classifier.ingest(d)
    classifier.train(training)
    return classifier, db_vocab, sports_vocab, noise_vocab


class TestFlatClassification:
    def test_on_topic_documents_accepted(self, flat_setup) -> None:
        classifier, db_vocab, _, _ = flat_setup
        result = classifier.classify(doc({t: 2 for t in db_vocab[:8]}))
        assert result.topic == "ROOT/db"
        assert result.accepted
        assert result.confidence > 0

    def test_sibling_separation(self, flat_setup) -> None:
        classifier, _, sports_vocab, _ = flat_setup
        result = classifier.classify(doc({t: 2 for t in sports_vocab[:8]}))
        assert result.topic == "ROOT/sports"

    def test_background_lands_in_others(self, flat_setup) -> None:
        classifier, _, _, noise_vocab = flat_setup
        result = classifier.classify(doc({t: 2 for t in noise_vocab[:8]}))
        assert result.topic == "ROOT/OTHERS"
        assert not result.accepted

    def test_path_records_descent(self, flat_setup) -> None:
        classifier, db_vocab, _, _ = flat_setup
        result = classifier.classify(doc({t: 2 for t in db_vocab[:8]}))
        assert result.path == (("ROOT/db", result.confidence),)

    def test_confidence_for_topic(self, flat_setup) -> None:
        classifier, db_vocab, sports_vocab, _ = flat_setup
        on = classifier.confidence_for(doc({t: 2 for t in db_vocab[:8]}), "ROOT/db")
        off = classifier.confidence_for(
            doc({t: 2 for t in sports_vocab[:8]}), "ROOT/db"
        )
        assert on > off

    def test_confidence_for_unknown_topic_raises(self, flat_setup) -> None:
        classifier = flat_setup[0]
        with pytest.raises(TrainingError):
            classifier.confidence_for(doc({"x": 1}), "ROOT/none")

    def test_estimates_available(self, flat_setup) -> None:
        classifier = flat_setup[0]
        estimates = classifier.estimates()
        assert set(estimates) == {"ROOT/db", "ROOT/sports"}
        for members in estimates.values():
            for space, estimate in members:
                assert space == "term"
                assert 0.0 <= estimate.precision <= 1.0

    def test_untrained_classifier_raises(self) -> None:
        tree = TopicTree.from_leaves(["a"])
        classifier = HierarchicalClassifier(tree)
        with pytest.raises(TrainingError):
            classifier.classify(doc({"x": 1}))

    def test_modes_all_work(self, flat_setup) -> None:
        classifier, db_vocab, _, _ = flat_setup
        d = doc({t: 2 for t in db_vocab[:8]})
        for mode in ("single", "unanimous", "majority", "weighted", "best"):
            result = classifier.classify(d, mode=mode)
            assert result.topic == "ROOT/db"

    def test_unknown_mode_rejected(self, flat_setup) -> None:
        classifier, db_vocab, _, _ = flat_setup
        with pytest.raises(TrainingError):
            classifier.classify(doc({"x": 1}), mode="nope")


class TestHierarchy:
    def test_two_level_descent(self) -> None:
        tree = TopicTree.from_nested({"math": {"algebra": {}, "stochastics": {}}})
        config = BingoConfig(selected_features=50, tf_preselection=100)
        classifier = HierarchicalClassifier(tree, config)
        algebra = topic_docs(
            ["group", "ring", "ideal", "morphism"], 15, seed=4,
            extra=["theorem", "proof"],
        )
        stochastics = topic_docs(
            ["probability", "variance", "martingale", "markov"], 15, seed=5,
            extra=["theorem", "proof"],
        )
        others = topic_docs(["cooking", "travel", "hotel", "sports"], 15, seed=6)
        training = {
            "ROOT/math/algebra": algebra,
            "ROOT/math/stochastics": stochastics,
            "ROOT/OTHERS": others,
            "ROOT/math/OTHERS": others,
        }
        for docs in training.values():
            for d in docs:
                classifier.ingest(d)
        classifier.train(training)

        result = classifier.classify(
            doc({"group": 3, "ideal": 2, "theorem": 1})
        )
        assert result.topic == "ROOT/math/algebra"
        assert len(result.path) == 2  # math, then algebra

        off = classifier.classify(doc({"cooking": 3, "hotel": 2}))
        assert off.topic.endswith("/OTHERS")

    def test_rejection_at_second_level(self) -> None:
        """A document that is math but neither algebra nor stochastics
        lands in math/OTHERS."""
        tree = TopicTree.from_nested({"math": {"algebra": {}, "stochastics": {}}})
        config = BingoConfig(selected_features=50, tf_preselection=100)
        classifier = HierarchicalClassifier(tree, config)
        algebra = topic_docs(["group", "ring"], 15, seed=7, extra=["theorem"])
        stochastics = topic_docs(
            ["probability", "variance"], 15, seed=8, extra=["theorem"]
        )
        others = topic_docs(["cooking", "travel"], 15, seed=9)
        training = {
            "ROOT/math/algebra": algebra,
            "ROOT/math/stochastics": stochastics,
            "ROOT/OTHERS": others,
            "ROOT/math/OTHERS": others,
        }
        for docs in training.values():
            for d in docs:
                classifier.ingest(d)
        classifier.train(training)
        # strongly 'theorem' (math) but no subtopic vocabulary at all
        result = classifier.classify(doc({"theorem": 6}))
        if result.topic != "ROOT/OTHERS":  # reached the math level
            assert result.topic in (
                "ROOT/math/OTHERS",
                "ROOT/math/algebra",
                "ROOT/math/stochastics",
            )


class TestMultipleSpaces:
    def test_anchor_space_member_trained(self) -> None:
        tree = TopicTree.from_leaves(["db"])
        config = BingoConfig(selected_features=30, tf_preselection=60)
        classifier = HierarchicalClassifier(
            tree, config, spaces=("term", "anchor")
        )
        positive = [
            {"term": Counter({"database": 3, "query": 2}),
             "anchor": Counter({"database": 1})}
            for _ in range(10)
        ]
        negative = [
            {"term": Counter({"football": 3, "goal": 2}),
             "anchor": Counter({"sport": 1})}
            for _ in range(10)
        ]
        training = {"ROOT/db": positive, "ROOT/OTHERS": negative}
        for docs in training.values():
            for d in docs:
                classifier.ingest(d)
        classifier.train(training)
        model = classifier.models["ROOT/db"]
        assert [m.space for m in model.members] == ["term", "anchor"]
        result = classifier.classify(positive[0], mode="unanimous")
        assert result.topic == "ROOT/db"
