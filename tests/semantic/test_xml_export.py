"""Tests for semantic XML generation."""

from __future__ import annotations

from xml.etree import ElementTree as ET

import pytest

from repro.semantic.xml_export import XmlExporter, document_to_xml

from tests.search.conftest import make_doc


@pytest.fixture()
def documents():
    return [
        make_doc(
            0, {"recoveri": 5, "algorithm": 2},
            topic="ROOT/databases", confidence=0.9,
            out_urls=("http://t.example/a", "http://t.example/b"),
        ),
        make_doc(1, {"sport": 4}, topic="ROOT/OTHERS", confidence=0.1),
    ]


class TestDocumentToXml:
    def test_structure(self, documents) -> None:
        element = document_to_xml(documents[0])
        assert element.tag == "document"
        assert element.get("url") == documents[0].final_url
        topic = element.find("classification/topic")
        assert topic is not None
        assert topic.get("path") == "ROOT/databases"
        assert float(topic.get("confidence")) == pytest.approx(0.9)

    def test_terms_sorted_by_weight(self, documents) -> None:
        element = document_to_xml(documents[0])
        terms = element.findall("terms/term")
        assert [t.get("stem") for t in terms] == ["recoveri", "algorithm"]
        assert int(terms[0].get("tf")) == 5

    def test_links_preserved(self, documents) -> None:
        element = document_to_xml(documents[0])
        hrefs = [link.get("href") for link in element.findall("links/link")]
        assert hrefs == ["http://t.example/a", "http://t.example/b"]

    def test_max_terms_cap(self, documents) -> None:
        element = document_to_xml(documents[0], max_terms=1)
        assert len(element.findall("terms/term")) == 1


class TestXmlExporter:
    def test_collection_counts(self, documents) -> None:
        exporter = XmlExporter(documents)
        root = exporter.to_element()
        assert root.tag == "crawl"
        assert root.get("documents") == "2"
        assert len(root.findall("document")) == 2

    def test_topic_filter(self, documents) -> None:
        root = XmlExporter(documents).to_element(topics=["ROOT/databases"])
        assert root.get("documents") == "1"

    def test_weights_use_idf(self, documents) -> None:
        root = XmlExporter(documents).to_element()
        term = root.find("document/terms/term[@stem='recoveri']")
        assert term is not None
        # tf*idf weighting: weight differs from the raw tf
        assert float(term.get("weight")) != float(term.get("tf"))

    def test_write_round_trips(self, documents, tmp_path) -> None:
        path = XmlExporter(documents).write(tmp_path / "crawl.xml")
        parsed = ET.parse(path).getroot()
        assert parsed.tag == "crawl"
        assert len(parsed.findall("document")) == 2
