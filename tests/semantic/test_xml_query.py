"""Tests for XXL-style ranked XML retrieval."""

from __future__ import annotations

import pytest

from repro.errors import SearchError
from repro.semantic.xml_export import XmlExporter
from repro.semantic.xml_query import parse_query

from tests.search.conftest import make_doc


@pytest.fixture(scope="module")
def collection():
    documents = [
        make_doc(
            0, {"recoveri": 6, "log": 2},
            topic="ROOT/databases", confidence=0.9,
        ),
        make_doc(
            1, {"sourc": 4, "code": 4, "releas": 2},
            topic="ROOT/databases", confidence=0.5,
        ),
        make_doc(2, {"sport": 5}, topic="ROOT/OTHERS", confidence=0.1),
    ]
    return XmlExporter(documents).to_element()


class TestParsing:
    def test_simple_path(self) -> None:
        query = parse_query("crawl/document/terms")
        assert [step.tag for step in query.steps] == [
            "crawl", "document", "terms",
        ]
        assert not any(step.descend for step in query.steps)

    def test_descendant_axis(self) -> None:
        query = parse_query("crawl//term")
        assert query.steps[1].descend

    def test_attribute_predicate(self) -> None:
        query = parse_query('document[@mime="text/html"]')
        assert query.steps[0].attribute_filters == (("mime", "text/html"),)

    def test_similarity_predicate(self) -> None:
        query = parse_query('term[~"recovery"]')
        assert query.steps[0].similarity == "recovery"

    def test_combined_predicates(self) -> None:
        query = parse_query('topic[@path="ROOT/databases"][~"database"]')
        step = query.steps[0]
        assert step.attribute_filters == (("path", "ROOT/databases"),)
        assert step.similarity == "database"

    def test_empty_query_rejected(self) -> None:
        with pytest.raises(SearchError):
            parse_query("   ")

    def test_malformed_step_rejected(self) -> None:
        with pytest.raises(SearchError):
            parse_query("crawl/##bad##")


class TestEvaluation:
    def test_boolean_path_match(self, collection) -> None:
        matches = parse_query("crawl/document").run(collection, top_k=10)
        assert len(matches) == 3
        assert all(m.score == 1.0 for m in matches)

    def test_attribute_filter(self, collection) -> None:
        matches = parse_query(
            'crawl/document/classification/topic[@path="ROOT/databases"]'
        ).run(collection)
        assert len(matches) == 2

    def test_descendant_search(self, collection) -> None:
        matches = parse_query('crawl//term[@stem="recoveri"]').run(collection)
        assert len(matches) == 1
        assert matches[0].document_id == "0"

    def test_similarity_ranking(self, collection) -> None:
        matches = parse_query('crawl/document/terms[~"source code"]').run(
            collection
        )
        assert matches
        # the source/code document's terms element ranks first
        assert matches[0].document_id == "1"
        scores = [m.score for m in matches]
        assert scores == sorted(scores, reverse=True)

    def test_similarity_drops_zero_scores(self, collection) -> None:
        matches = parse_query('crawl/document/terms[~"zebra"]').run(collection)
        assert matches == []

    def test_top_k(self, collection) -> None:
        matches = parse_query("crawl//term").run(collection, top_k=2)
        assert len(matches) == 2

    def test_wildcard_tag(self, collection) -> None:
        matches = parse_query("crawl/document/*").run(collection, top_k=50)
        tags = {m.element.tag for m in matches}
        assert {"title", "classification", "terms", "links"} <= tags

    def test_score_multiplies_along_path(self, collection) -> None:
        combined = parse_query(
            'crawl/document[~"recovery"]/terms/term[~"recovery"]'
        ).run(collection)
        assert combined
        single = parse_query(
            'crawl/document/terms/term[~"recovery"]'
        ).run(collection)
        assert combined[0].score <= single[0].score
