"""Checkpoint/resume through :class:`CrawlContext` directly.

The robust-layer test (``tests/robust/test_checkpoint.py``) drives
checkpointing through the crawler facade; this one exercises the
context-level primitives -- ``snapshot_context`` / ``restore_context``
with a bare :class:`~repro.pipeline.context.CrawlContext` -- and pins
that a mid-crawl kill + resume lands on counters identical to an
uninterrupted run when the whole flow never touches the facade's
delegating attributes.
"""

from __future__ import annotations

import pytest

from repro.core import FocusedCrawler
from repro.core.crawler import SOFT, PhaseSettings
from repro.robust.checkpoint import (
    Checkpointer,
    restore_context,
    save_checkpoint,
    snapshot_context,
)
from repro.storage.bulkloader import BulkLoader
from repro.storage.database import Database
from repro.web import SyntheticWeb

from tests.conftest import small_web_config
from tests.core.conftest import fast_engine_config
from tests.core.test_crawler import make_trained_classifier

BUDGET = 120
KILL_AFTER = 60
EVERY = 25


def build_crawler():
    web = SyntheticWeb.generate(small_web_config())
    config = fast_engine_config(max_retries=2)
    classifier = make_trained_classifier(web, config)
    database = Database(validate=True)
    loader = BulkLoader(database, batch_size=10)
    crawler = FocusedCrawler(web, classifier, config, loader=loader)
    crawler.seed(web.seed_homepages(3), topic="ROOT/databases", priority=10.0)
    return crawler, database


def settings(budget: int) -> PhaseSettings:
    return PhaseSettings(name="t", focus=SOFT, fetch_budget=budget)


@pytest.fixture(scope="module")
def kill_resume_via_context(tmp_path_factory):
    checkpoint_dir = tmp_path_factory.mktemp("ctx-checkpoint")

    baseline, _ = build_crawler()
    baseline_stats = baseline.crawl(settings(BUDGET))

    interrupted, _ = build_crawler()
    checkpointer = Checkpointer(checkpoint_dir, every=EVERY)
    interrupted.crawl(settings(KILL_AFTER), checkpointer=checkpointer)
    assert checkpointer.saves == KILL_AFTER // EVERY
    del interrupted

    resumed, _ = build_crawler()
    # restore through the context, not the facade
    resume_stats = restore_context(resumed.ctx, checkpoint_dir)
    assert resume_stats.visited_urls < BUDGET
    final_stats = resumed.pipeline.crawl(
        settings(BUDGET), resume=resume_stats
    )
    return baseline, baseline_stats, resumed, final_stats


class TestContextKillResume:
    def test_counters_identical(self, kill_resume_via_context) -> None:
        _, baseline_stats, _, final_stats = kill_resume_via_context
        assert final_stats.table1_row() == baseline_stats.table1_row()
        for counter in (
            "fetch_errors", "duplicates_skipped", "mime_rejected",
            "politeness_defers", "retries",
        ):
            assert getattr(final_stats, counter) == getattr(
                baseline_stats, counter
            ), f"{counter} diverged across the interruption"
        assert final_stats.simulated_seconds == pytest.approx(
            baseline_stats.simulated_seconds
        )

    def test_context_state_identical(self, kill_resume_via_context) -> None:
        baseline, _, resumed, _ = kill_resume_via_context
        a, b = baseline.ctx, resumed.ctx
        assert [d.final_url for d in a.documents] == [
            d.final_url for d in b.documents
        ]
        assert a.hosts.to_dict() == b.hosts.to_dict()
        assert a.frontier.stats() == b.frontier.stats()
        assert a.log_sequence == b.log_sequence
        assert a.docs_since_retrain == b.docs_since_retrain


class TestContextSnapshotSurface:
    def test_snapshot_accepts_context_and_crawler(self) -> None:
        crawler, _ = build_crawler()
        stats = crawler.crawl(settings(20))
        via_ctx = snapshot_context(crawler.ctx, stats)
        via_facade = snapshot_context(crawler, stats)
        assert via_ctx == via_facade

    def test_save_checkpoint_accepts_context(self, tmp_path) -> None:
        crawler, _ = build_crawler()
        stats = crawler.crawl(settings(20))
        path = save_checkpoint(crawler.ctx, stats, tmp_path)
        assert path.exists()
        assert (tmp_path / "database" / "manifest.json").exists()
