"""Micro-batch size must not change crawl *results*.

With link expansion disabled (``max_depth=0``) the frontier pop order
is fixed up front, so the staged crawl is provably batch-invariant:
batch sizes 1, 3 and 8 must produce identical stats, documents,
classifier outputs, database rows and clock.  (With expansion enabled,
larger batches legitimately relax the visit interleaving -- frontier
pushes land batch-wise -- so full equality is only pinned at the
default size, in ``test_parity``.)

Also guarded here: a batched crawl actually drives the wave-based
batch kernel (one ``classify_many`` call per micro-batch), which is
the point of batching.
"""

from __future__ import annotations

import pytest

from repro.core import FocusedCrawler
from repro.core.crawler import SOFT, PhaseSettings
from repro.storage.bulkloader import BulkLoader
from repro.storage.database import Database
from repro.web import SyntheticWeb

from tests.conftest import small_web_config
from tests.core.conftest import fast_engine_config
from tests.core.test_crawler import make_trained_classifier


def run_crawl(batch_size: int, max_depth: int | None = 0,
              fetch_budget: int = 60):
    web = SyntheticWeb.generate(small_web_config())
    config = fast_engine_config(
        max_retries=2, pipeline_batch_size=batch_size
    )
    classifier = make_trained_classifier(web, config)
    database = Database(validate=True)
    loader = BulkLoader(database, batch_size=10)
    crawler = FocusedCrawler(web, classifier, config, loader=loader)
    crawler.seed(
        web.seed_homepages(30), topic="ROOT/databases", priority=10.0
    )
    stats = crawler.crawl(
        PhaseSettings(
            name="t", focus=SOFT, max_depth=max_depth,
            fetch_budget=fetch_budget,
        )
    )
    return crawler, stats, database


def fingerprint(crawler, stats, database) -> dict:
    return {
        "stats": {
            field: getattr(stats, field)
            for field in stats.__dataclass_fields__
        },
        "documents": [
            (d.doc_id, d.final_url, d.topic, d.confidence)
            for d in crawler.documents
        ],
        "clock": crawler.clock.now,
        "frontier": crawler.frontier.stats(),
        # relations are unordered row sets; scan order reflects which
        # workspace buffer happened to fill first, which legitimately
        # shifts with the global add order at different batch sizes
        "db": {
            name: sorted(repr(row) for row in database[name].scan())
            for name in ("documents", "terms", "links", "crawl_log")
        },
    }


class TestBatchInvariance:
    @pytest.fixture(scope="class")
    def runs(self):
        return {size: run_crawl(size) for size in (1, 3, 8)}

    def test_identical_across_batch_sizes(self, runs) -> None:
        reference = fingerprint(*runs[1])
        for size in (3, 8):
            assert fingerprint(*runs[size]) == reference, (
                f"batch size {size} diverged from the per-document run"
            )

    def test_batched_run_uses_batch_kernel(self, runs) -> None:
        crawler, stats, _ = runs[8]
        kernel = crawler.classifier._kernel()
        assert kernel is not None
        assert kernel.batch_calls > 0
        # the crawl classifies exclusively through classify_batch
        assert kernel.batch_docs >= stats.stored_pages
        assert kernel.single_calls == 0


class TestBatchedFullCrawl:
    """With expansion enabled, a batched crawl still honours budgets,
    retrain cadence and storage invariants (exact interleaving is
    deliberately relaxed -- no golden equality here)."""

    @pytest.fixture(scope="class")
    def batched(self):
        return run_crawl(8, max_depth=None, fetch_budget=150)

    def test_budget_and_storage_invariants(self, batched) -> None:
        crawler, stats, database = batched
        assert stats.visited_urls == 150
        assert 0 < stats.stored_pages <= stats.visited_urls
        assert len(database["documents"]) == stats.stored_pages
        assert len(database["crawl_log"]) == stats.visited_urls
        assert [d.doc_id for d in crawler.documents] == list(
            range(stats.stored_pages)
        )

    def test_mid_batch_retrain_splits_spans(self) -> None:
        """A retrain trigger inside a micro-batch fires at exactly the
        accepted-document count the per-document loop would use."""
        web = SyntheticWeb.generate(small_web_config())
        config = fast_engine_config(
            max_retries=2, pipeline_batch_size=8, retrain_interval=10
        )
        classifier = make_trained_classifier(web, config)
        retrain_points: list[int] = []
        crawler = FocusedCrawler(web, classifier, config)
        crawler.on_retrain = lambda: retrain_points.append(
            crawler.ctx.docs_since_retrain
        )
        crawler.seed(
            web.seed_homepages(10), topic="ROOT/databases", priority=10.0
        )
        stats = crawler.crawl(
            PhaseSettings(name="t", focus=SOFT, fetch_budget=80)
        )
        assert retrain_points, "no retrain fired"
        # the counter is reset to 0 *before* the callback, exactly like
        # the monolith, regardless of where the trigger sat in a batch
        assert all(count == 0 for count in retrain_points)
        assert len(retrain_points) == stats.positively_classified // 10
