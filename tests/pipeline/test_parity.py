"""Golden parity: the staged pipeline vs the historical monolith.

The golden values below were captured from the per-document monolithic
``FocusedCrawler`` immediately before the staged-pipeline refactor
(same Web seed, same configs).  At the default
``pipeline_batch_size=1`` the staged loop must reproduce them **bit
for bit**: every Table-1 counter, every diagnostic counter, the
simulated clock, the stored document sequence, the frontier state and
the bulk-loaded row counts.

Two scenarios are pinned:

* ``soft``  -- a standalone soft-focus crawl (no retraining callback);
* ``portal`` -- the full engine run (bootstrap, sharp learning phase,
  6 mid-crawl retrainings, soft harvesting phase), which exercises the
  retrain-split path of the batch commit.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.core import BingoEngine, FocusedCrawler
from repro.core.crawler import SOFT, PhaseSettings
from repro.storage.bulkloader import BulkLoader
from repro.storage.database import Database
from repro.web import SyntheticWeb

from tests.conftest import small_web_config
from tests.core.conftest import fast_engine_config
from tests.core.test_crawler import make_trained_classifier

SOFT_STATS = {
    "visited_urls": 120,
    "stored_pages": 111,
    "extracted_links": 572,
    "positively_classified": 96,
    "max_depth": 3,
    "fetch_errors": 0,
    "not_found": 0,
    "redirect_loops": 0,
    "dns_failures": 0,
    "duplicates_skipped": 8,
    "mime_rejected": 1,
    "size_rejected": 0,
    "url_rejected": 0,
    "locked_skipped": 0,
    "bad_host_skipped": 0,
    "quarantine_deferred": 0,
    "slow_deferred": 0,
    "politeness_defers": 96,
    "retries": 0,
    "simulated_seconds": 119.651833482,
    "visited_hosts": 18,
    "hosts_sha": "425cb0d9830d97c3",
}
SOFT_CRAWLER = {
    "documents": 111,
    "doc_urls_sha": "f036c52661d1097b",
    "doc_topics_sha": "6db1566d7713a729",
    "frontier_len": 141,
    "frontier_enqueued": 261,
    "frontier_seen_sha": "809e44e1d72e9950",
    "clock": 119.651833482,
    "converted_formats": {
        "html": 69, "pdf": 29, "powerpoint": 3, "word": 9, "archive": 1,
    },
    "retry_log": 0,
}
SOFT_DB = {"documents": 111, "terms": 17172, "links": 572, "crawl_log": 120}

PORTAL_LEARNING = {
    "visited_urls": 80,
    "stored_pages": 80,
    "extracted_links": 356,
    "positively_classified": 70,
    "max_depth": 3,
    "fetch_errors": 0,
    "not_found": 0,
    "redirect_loops": 0,
    "dns_failures": 0,
    "duplicates_skipped": 0,
    "mime_rejected": 0,
    "size_rejected": 0,
    "url_rejected": 0,
    "locked_skipped": 0,
    "bad_host_skipped": 0,
    "quarantine_deferred": 0,
    "slow_deferred": 0,
    "politeness_defers": 64,
    "retries": 0,
    "simulated_seconds": 39.587595612,
    "visited_hosts": 10,
    "hosts_sha": "f9669c8cb41b9905",
}
PORTAL_HARVESTING = {
    "visited_urls": 300,
    "stored_pages": 278,
    "extracted_links": 1175,
    "positively_classified": 194,
    "max_depth": 6,
    "fetch_errors": 3,
    "not_found": 0,
    "redirect_loops": 0,
    "dns_failures": 0,
    "duplicates_skipped": 12,
    "mime_rejected": 7,
    "size_rejected": 0,
    "url_rejected": 0,
    "locked_skipped": 0,
    "bad_host_skipped": 0,
    "quarantine_deferred": 0,
    "slow_deferred": 0,
    "politeness_defers": 212,
    "retries": 3,
    "simulated_seconds": 409.842243561,
    "visited_hosts": 34,
    "hosts_sha": "e388a16c0a1ef34d",
}
PORTAL_RETRAININGS = 6
PORTAL_ARCHETYPES_ADDED = 64
PORTAL_CRAWLER = {
    "documents": 358,
    "doc_urls_sha": "9353f085949d6d56",
    "doc_topics_sha": "a64f6a204c3d31aa",
    "frontier_len": 175,
    "frontier_enqueued": 552,
    "frontier_seen_sha": "b645dbe69d8f8b4b",
    "clock": 449.429839173,
    "converted_formats": {
        "html": 247, "pdf": 63, "word": 27, "powerpoint": 12, "archive": 9,
    },
    "retry_log": 3,
}
PORTAL_DB = {
    "documents": 358, "terms": 56365, "links": 1531, "crawl_log": 380,
}


def sha(items) -> str:
    return hashlib.sha256("\n".join(items).encode()).hexdigest()[:16]


def stats_fingerprint(stats) -> dict:
    data = {
        field: getattr(stats, field)
        for field in stats.__dataclass_fields__
        if field != "hosts_visited"
    }
    data["visited_hosts"] = stats.visited_hosts
    data["hosts_sha"] = sha(sorted(stats.hosts_visited))
    data["simulated_seconds"] = round(data["simulated_seconds"], 9)
    return data


def crawler_fingerprint(crawler) -> dict:
    return {
        "documents": len(crawler.documents),
        "doc_urls_sha": sha([d.final_url for d in crawler.documents]),
        "doc_topics_sha": sha([d.topic for d in crawler.documents]),
        "frontier_len": len(crawler.frontier),
        "frontier_enqueued": crawler.frontier.enqueued,
        "frontier_seen_sha": sha(
            sorted(u for u in crawler.frontier._seen_urls)
        ),
        "clock": round(crawler.clock.now, 9),
        "converted_formats": dict(crawler.converted_formats),
        "retry_log": len(crawler.retry_log),
    }


class TestSoftCrawlParity:
    """Standalone soft-focus crawl: staged == monolith, bit for bit."""

    @pytest.fixture(scope="class")
    def soft_run(self):
        web = SyntheticWeb.generate(small_web_config())
        config = fast_engine_config(max_retries=2)
        classifier = make_trained_classifier(web, config)
        database = Database(validate=True)
        loader = BulkLoader(database, batch_size=10)
        crawler = FocusedCrawler(web, classifier, config, loader=loader)
        crawler.seed(
            web.seed_homepages(3), topic="ROOT/databases", priority=10.0
        )
        stats = crawler.crawl(
            PhaseSettings(name="t", focus=SOFT, fetch_budget=120)
        )
        return crawler, stats, database

    def test_stats_bit_identical(self, soft_run) -> None:
        _, stats, _ = soft_run
        assert stats_fingerprint(stats) == SOFT_STATS

    def test_crawler_state_bit_identical(self, soft_run) -> None:
        crawler, _, _ = soft_run
        assert crawler_fingerprint(crawler) == SOFT_CRAWLER

    def test_database_rows_identical(self, soft_run) -> None:
        _, _, database = soft_run
        rows = {name: len(database[name]) for name in SOFT_DB}
        assert rows == SOFT_DB


class TestPortalRunParity:
    """Full engine run (learning + retrains + harvesting) reproduces the
    monolith exactly, including the mid-batch retrain-split path."""

    @pytest.fixture(scope="class")
    def portal_run(self):
        web = SyntheticWeb.generate(small_web_config())
        engine = BingoEngine.for_portal(web, config=fast_engine_config())
        learning = engine.run_learning_phase()
        harvesting = engine.run_harvesting_phase(fetch_budget=300)
        return engine, learning, harvesting

    def test_learning_stats_bit_identical(self, portal_run) -> None:
        _, learning, _ = portal_run
        assert stats_fingerprint(learning.stats) == PORTAL_LEARNING

    def test_harvesting_stats_bit_identical(self, portal_run) -> None:
        _, _, harvesting = portal_run
        assert stats_fingerprint(harvesting.stats) == PORTAL_HARVESTING

    def test_retraining_trajectory_identical(self, portal_run) -> None:
        engine, _, _ = portal_run
        assert engine.retrainings == PORTAL_RETRAININGS
        assert engine.archetypes_added == PORTAL_ARCHETYPES_ADDED

    def test_crawler_state_bit_identical(self, portal_run) -> None:
        engine, _, _ = portal_run
        assert crawler_fingerprint(engine.crawler) == PORTAL_CRAWLER

    def test_database_rows_identical(self, portal_run) -> None:
        engine, _, _ = portal_run
        rows = {name: len(engine.database[name]) for name in PORTAL_DB}
        assert rows == PORTAL_DB
