"""End-to-end convert parity: scanner path vs frozen reference analyzer.

:class:`~repro.pipeline.stages.ConvertStage` exposes an ``analyzer``
seam; installing :func:`repro.text.reference.tokenize_html_reference`
there runs the whole crawl on the pre-rewrite five-regex pipeline
(tokens recounted per feature space) while everything else stays the
same.  The synthetic web renders no HTML entities and no comments --
the constructs the scanner deliberately fixes -- so both paths must
produce **identical** crawls: every Table-1 stat, every stored title,
every per-document term bag, every tf*idf vector, and the simulated
clock, bit for bit.

This is the strongest whole-system guarantee behind the perf rewrite:
swapping the text substrate changed nothing observable.
"""

from __future__ import annotations

import pytest

from repro.core import FocusedCrawler
from repro.core.crawler import SOFT, PhaseSettings
from repro.text.reference import tokenize_html_reference
from repro.web import SyntheticWeb

from tests.conftest import small_web_config
from tests.core.conftest import fast_engine_config
from tests.core.test_crawler import make_trained_classifier


def run_soft_crawl(use_reference_analyzer: bool):
    web = SyntheticWeb.generate(small_web_config())
    config = fast_engine_config(max_retries=2)
    classifier = make_trained_classifier(web, config)
    crawler = FocusedCrawler(web, classifier, config)
    if use_reference_analyzer:
        crawler.pipeline.convert.analyzer = tokenize_html_reference
    crawler.seed(
        web.seed_homepages(3), topic="ROOT/databases", priority=10.0
    )
    stats = crawler.crawl(
        PhaseSettings(name="t", focus=SOFT, fetch_budget=100)
    )
    return crawler, stats


@pytest.fixture(scope="module")
def runs():
    new = run_soft_crawl(use_reference_analyzer=False)
    old = run_soft_crawl(use_reference_analyzer=True)
    return new, old


def test_table1_stats_bit_identical(runs) -> None:
    (_, new_stats), (_, old_stats) = runs
    new = {f: getattr(new_stats, f)
           for f in new_stats.__dataclass_fields__}
    old = {f: getattr(old_stats, f)
           for f in old_stats.__dataclass_fields__}
    assert new == old
    assert new["stored_pages"] > 50  # the crawl actually did work


def test_documents_and_titles_identical(runs) -> None:
    (new_crawler, _), (old_crawler, _) = runs
    new_docs = new_crawler.documents
    old_docs = old_crawler.documents
    assert len(new_docs) == len(old_docs)
    for a, b in zip(new_docs, old_docs):
        assert (a.doc_id, a.final_url, a.title, a.topic, a.confidence) \
            == (b.doc_id, b.final_url, b.title, b.topic, b.confidence)


def test_term_bags_identical_content_and_order(runs) -> None:
    """The scanner's ``stem_counts`` short-cut must equal the
    reference's token-recount per space -- including dict order, which
    downstream iteration depends on."""
    (new_crawler, _), (old_crawler, _) = runs
    for a, b in zip(new_crawler.documents, old_crawler.documents):
        assert set(a.counts) == set(b.counts)
        for space in a.counts:
            assert dict(a.counts[space]) == dict(b.counts[space])
            assert list(a.counts[space]) == list(b.counts[space])


def test_per_document_vectors_identical(runs) -> None:
    """tf*idf rows (batched kernel vs reference weighting, each under
    its own crawl's idf snapshot) agree to the last bit."""
    (new_crawler, _), (old_crawler, _) = runs
    new_bundles = new_crawler.classifier.vectorize_many(
        [d.counts for d in new_crawler.documents]
    )
    old_bundles = [
        old_crawler.classifier.vectorize(d.counts)
        for d in old_crawler.documents
    ]
    assert len(new_bundles) == len(old_bundles)
    for new_bundle, old_bundle in zip(new_bundles, old_bundles):
        assert set(new_bundle) == set(old_bundle)
        for space in new_bundle:
            assert new_bundle[space].weights == old_bundle[space].weights
            assert new_bundle[space].norm == old_bundle[space].norm


def test_clock_and_frontier_identical(runs) -> None:
    (new_crawler, _), (old_crawler, _) = runs
    assert new_crawler.clock.now == old_crawler.clock.now
    assert len(new_crawler.frontier) == len(old_crawler.frontier)
    assert new_crawler.frontier.enqueued == old_crawler.frontier.enqueued


def test_convert_counters_flow_through_obs(runs) -> None:
    (new_crawler, _), _ = runs
    snapshot = new_crawler.obs.registry.snapshot()["counters"]
    docs = snapshot["convert_docs_total"][""]
    tokens = snapshot["convert_tokens_total"][""]
    assert docs == len(new_crawler.documents)
    assert tokens > 0
    hits = snapshot["convert_stem_table_hits_total"][""]
    misses = snapshot["convert_stem_table_misses_total"][""]
    assert hits + misses > 0
    intern_hits = snapshot["convert_intern_hits_total"][""]
    intern_misses = snapshot["convert_intern_misses_total"][""]
    # Zipfian corpus: the memo absorbs the overwhelming majority
    assert intern_hits > 5 * intern_misses


def test_convert_wall_histogram_populates(runs) -> None:
    """Wall durations live in the obs sidecar (never the deterministic
    registry) and record one observation per convert micro-batch."""
    (new_crawler, _), _ = runs
    wall = new_crawler.obs.wall_stage_seconds
    assert "convert" in wall
    histogram = wall["convert"]
    assert histogram.count >= 1
    assert histogram.sum >= 0.0
    snapshot = new_crawler.obs.registry.snapshot()
    flat = str(snapshot)
    assert "wall" not in flat  # sidecar stays out of the snapshot
