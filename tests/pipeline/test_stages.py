"""Stage protocol, per-stage hooks, cost breakdown and workspace
sharding -- the pipeline's contract surface.
"""

from __future__ import annotations

import pytest

from repro.core import BingoConfig, FocusedCrawler
from repro.core.crawler import SOFT, PhaseSettings
from repro.errors import ConfigError
from repro.pipeline import STAGE_NAMES, CrawlPipeline, Stage
from repro.storage.bulkloader import BulkLoader
from repro.storage.database import Database
from repro.web import SyntheticWeb

from tests.conftest import small_web_config
from tests.core.conftest import fast_engine_config
from tests.core.test_crawler import make_trained_classifier


@pytest.fixture(scope="module")
def web():
    return SyntheticWeb.generate(small_web_config())


def build_crawler(web, **overrides) -> FocusedCrawler:
    config = fast_engine_config(max_retries=2, **overrides)
    classifier = make_trained_classifier(web, config)
    return FocusedCrawler(web, classifier, config)


class TestStageContract:
    def test_canonical_stage_order(self) -> None:
        assert STAGE_NAMES == (
            "admit", "fetch", "convert", "analyze", "classify",
            "persist", "expand",
        )

    def test_pipeline_wires_stages_in_order(self, web) -> None:
        crawler = build_crawler(web)
        assert tuple(s.name for s in crawler.pipeline.stages) == STAGE_NAMES

    def test_stages_satisfy_protocol(self, web) -> None:
        crawler = build_crawler(web)
        for stage in crawler.pipeline.stages:
            assert isinstance(stage, Stage)

    def test_custom_stage_satisfies_protocol(self) -> None:
        class Passthrough:
            name = "passthrough"

            def run(self, batch, ctx):
                return batch

        assert isinstance(Passthrough(), Stage)
        assert isinstance(CrawlPipeline, type)


class TestStageHooks:
    def test_on_batch_reports_every_stage(self, web) -> None:
        crawler = build_crawler(web)
        events: list[tuple[str, int, int, float]] = []
        crawler.pipeline.add_hook(
            lambda event: events.append(
                (event.stage, event.in_size, event.out_size, event.elapsed)
            )
        )
        crawler.seed(
            web.seed_homepages(3), topic="ROOT/databases", priority=10.0
        )
        stats = crawler.crawl(
            PhaseSettings(name="t", focus=SOFT, fetch_budget=20)
        )
        seen_stages = {name for name, *_ in events}
        assert seen_stages == set(STAGE_NAMES)
        for name, n_in, n_out, elapsed in events:
            assert n_out <= n_in or name == "classify"
            assert elapsed >= 0.0
        # front half runs entry by entry: every admit batch has size 1
        assert all(
            n_in == 1 for name, n_in, _o, _e in events if name == "admit"
        )
        # stored documents all flowed through persist
        persisted = sum(
            n_out for name, _i, n_out, _e in events if name == "persist"
        )
        assert persisted == stats.stored_pages

    def test_batched_commit_groups_documents(self, web) -> None:
        crawler = build_crawler(web, pipeline_batch_size=8)
        sizes: list[int] = []
        crawler.pipeline.add_hook(
            lambda event:
            sizes.append(event.in_size) if event.stage == "classify" else None
        )
        crawler.seed(
            web.seed_homepages(10), topic="ROOT/databases", priority=10.0
        )
        crawler.crawl(PhaseSettings(name="t", focus=SOFT, fetch_budget=60))
        assert sizes, "classify stage never ran"
        assert max(sizes) > 1, "batched crawl never grouped documents"


class TestProcessingCostBreakdown:
    def test_defaults_sum_to_historical_constant(self) -> None:
        config = BingoConfig()
        # exact float equality: 0.0125 + 0.0125 + 0.025 == 0.05 in IEEE
        # doubles, so simulated timing is bit-identical to the old
        # module-level PROCESSING_COST
        assert config.processing_cost == 0.05

    def test_breakdown_is_tunable(self) -> None:
        config = BingoConfig(
            convert_cost=0.1, analyze_cost=0.2, classify_cost=0.3
        )
        assert config.processing_cost == pytest.approx(0.6)

    def test_negative_cost_rejected(self) -> None:
        with pytest.raises(ConfigError):
            BingoConfig(analyze_cost=-0.1).validate()

    def test_zero_batch_size_rejected(self) -> None:
        with pytest.raises(ConfigError):
            BingoConfig(pipeline_batch_size=0).validate()

    def test_costs_charge_simulated_time(self, web) -> None:
        cheap = build_crawler(web)
        dear = build_crawler(
            web, convert_cost=1.0, analyze_cost=1.0, classify_cost=1.0
        )
        for crawler in (cheap, dear):
            crawler.seed(
                web.seed_homepages(2), topic="ROOT/databases", priority=10.0
            )
        phase = PhaseSettings(name="t", focus=SOFT, fetch_budget=10)
        cheap_stats = cheap.crawl(phase)
        dear_stats = dear.crawl(phase)
        assert dear_stats.simulated_seconds > cheap_stats.simulated_seconds


class TestWorkspaceSharding:
    def test_workspace_for_is_modulo_threads(self, web) -> None:
        crawler = build_crawler(web)
        threads = crawler.config.crawler_threads
        for key in (0, 1, threads - 1, threads, threads + 7, 12345):
            assert crawler.ctx.workspace_for(key) == key % threads

    def test_log_and_rows_share_the_sharding_helper(self, web) -> None:
        """Fetch-log rows and document rows agree on the workspace
        scheme: every used workspace id is < crawler_threads."""
        config = fast_engine_config(max_retries=2)
        classifier = make_trained_classifier(web, config)
        database = Database(validate=True)
        loader = BulkLoader(database, batch_size=10)
        crawler = FocusedCrawler(web, classifier, config, loader=loader)
        crawler.seed(
            web.seed_homepages(3), topic="ROOT/databases", priority=10.0
        )
        crawler.crawl(PhaseSettings(name="t", focus=SOFT, fetch_budget=30))
        used = set(loader._workspaces)
        assert used
        assert all(
            0 <= ws < config.crawler_threads for ws in sorted(used)
        )


class TestVisitOneCompat:
    def test_visit_one_matches_crawl_of_one(self, web) -> None:
        from repro.core.crawler import CrawlStats
        from repro.core.frontier import QueueEntry

        url = web.seed_homepages(1)[0]
        phase = PhaseSettings(name="t", focus=SOFT, fetch_budget=10)

        via_visit = build_crawler(web)
        stats = CrawlStats()
        via_visit._visit(
            QueueEntry(url=url, topic="ROOT/databases", priority=1.0,
                       depth=0),
            phase, stats,
        )

        via_crawl = build_crawler(web)
        via_crawl.seed([url], topic="ROOT/databases", priority=1.0)
        crawl_stats = via_crawl.crawl(
            PhaseSettings(name="t", focus=SOFT, fetch_budget=1)
        )
        assert stats.visited_urls == crawl_stats.visited_urls == 1
        assert stats.stored_pages == crawl_stats.stored_pages
        assert [d.final_url for d in via_visit.documents] == [
            d.final_url for d in via_crawl.documents
        ]
