"""Tests for the link graph and base-set expansion."""

from __future__ import annotations

from repro.analysis.graph import LinkGraph, expand_base_set


def chain(n: int) -> LinkGraph:
    graph = LinkGraph()
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


class TestLinkGraph:
    def test_add_edge_maintains_both_directions(self) -> None:
        graph = LinkGraph()
        graph.add_edge("a", "b")
        assert graph.successors["a"] == {"b"}
        assert graph.predecessors["b"] == {"a"}
        assert graph.predecessors["a"] == set()

    def test_self_links_ignored(self) -> None:
        graph = LinkGraph()
        graph.add_edge("a", "a")
        assert graph.edge_count() == 0

    def test_duplicate_edges_collapse(self) -> None:
        graph = LinkGraph()
        graph.add_edge("a", "b")
        graph.add_edge("a", "b")
        assert graph.edge_count() == 1

    def test_host_labels(self) -> None:
        graph = LinkGraph()
        graph.add_node("a", host="h1")
        graph.add_edge("a", "b")
        assert graph.host_of("a") == "h1"
        assert graph.host_of("b") == "b"  # falls back to node id

    def test_subgraph_induces_edges(self) -> None:
        graph = chain(5)
        sub = graph.subgraph([1, 2, 4])
        assert len(sub) == 3
        assert sub.successors[1] == {2}
        assert sub.successors[2] == set()  # 3 was dropped


class TestExpandBaseSet:
    def graph(self) -> LinkGraph:
        graph = LinkGraph()
        graph.add_edge("base", "succ1")
        graph.add_edge("base", "succ2")
        for i in range(30):
            graph.add_edge(f"pred{i}", "base")
        return graph

    def test_includes_base_and_successors(self) -> None:
        graph = self.graph()
        result = expand_base_set(
            ["base"],
            lambda n: graph.successors.get(n, ()),
            lambda n: graph.predecessors.get(n, ()),
        )
        assert {"base", "succ1", "succ2"} <= result

    def test_predecessors_bounded(self) -> None:
        graph = self.graph()
        result = expand_base_set(
            ["base"],
            lambda n: graph.successors.get(n, ()),
            lambda n: graph.predecessors.get(n, ()),
            max_predecessors_per_node=5,
        )
        preds = {n for n in result if str(n).startswith("pred")}
        assert len(preds) == 5

    def test_total_cap(self) -> None:
        graph = self.graph()
        result = expand_base_set(
            ["base"],
            lambda n: graph.successors.get(n, ()),
            lambda n: graph.predecessors.get(n, ()),
            max_total=4,
        )
        assert len(result) <= 4
        assert "base" in result
