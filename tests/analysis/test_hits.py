"""Tests for HITS and the Bharat/Henzinger variant."""

from __future__ import annotations

import pytest

from repro.analysis.distillation import bharat_henzinger
from repro.analysis.graph import LinkGraph
from repro.analysis.hits import hits


def hub_authority_graph() -> LinkGraph:
    """3 hubs all pointing at authority A; one also at B."""
    graph = LinkGraph()
    for i in range(3):
        graph.add_edge(f"hub{i}", "A")
    graph.add_edge("hub0", "B")
    graph.add_edge("loner", "C")
    return graph


class TestHits:
    def test_empty_graph(self) -> None:
        result = hits(LinkGraph())
        assert result.converged
        assert result.authority == {}

    def test_authority_ranking(self) -> None:
        result = hits(hub_authority_graph())
        top = [node for node, _ in result.top_authorities(2)]
        assert top[0] == "A"
        assert result.authority["A"] > result.authority["B"]

    def test_hub_ranking(self) -> None:
        result = hits(hub_authority_graph())
        # hub0 points to both A and B -> best hub
        assert result.top_hubs(1)[0][0] == "hub0"

    def test_scores_normalised(self) -> None:
        result = hits(hub_authority_graph())
        norm = sum(v * v for v in result.authority.values())
        assert norm == pytest.approx(1.0)

    def test_converges(self) -> None:
        result = hits(hub_authority_graph())
        assert result.converged
        assert result.iterations < 50

    def test_disconnected_nodes_score_zero_authority(self) -> None:
        graph = hub_authority_graph()
        graph.add_node("island")
        result = hits(graph)
        assert result.authority["island"] == pytest.approx(0.0)

    def test_deterministic(self) -> None:
        a = hits(hub_authority_graph())
        b = hits(hub_authority_graph())
        assert a.authority == b.authority


class TestBharatHenzinger:
    def test_host_weighting_defeats_host_spam(self) -> None:
        """10 pages of one spam host vs 3 independent hosts: plain HITS
        crowns the spammed target, B&H the independently endorsed one."""
        graph = LinkGraph()
        for i in range(10):
            node = f"spam{i}"
            graph.add_node(node, host="spamhost")
            graph.add_edge(node, "spammed")
        for i in range(3):
            node = f"indep{i}"
            graph.add_node(node, host=f"host{i}")
            graph.add_edge(node, "honest")
        plain = hits(graph)
        weighted = bharat_henzinger(graph)
        assert plain.authority["spammed"] > plain.authority["honest"]
        assert weighted.authority["honest"] > weighted.authority["spammed"]

    def test_relevance_weighting_suppresses_off_topic(self) -> None:
        graph = LinkGraph()
        for i in range(3):
            graph.add_node(f"on{i}", host=f"h{i}")
            graph.add_node(f"off{i}", host=f"g{i}")
            graph.add_edge(f"on{i}", "target_on")
            graph.add_edge(f"off{i}", "target_off")
        relevance = {f"on{i}": 1.0 for i in range(3)}
        relevance.update({f"off{i}": 0.05 for i in range(3)})
        result = bharat_henzinger(graph, relevance=relevance)
        assert result.authority["target_on"] > result.authority["target_off"]

    def test_without_weights_matches_hits_ranking(self) -> None:
        """On a graph with one page per host, B&H reduces to HITS."""
        graph = hub_authority_graph()
        for node in graph.nodes:
            graph.hosts[node] = str(node)  # distinct hosts
        plain = hits(graph)
        weighted = bharat_henzinger(graph)
        plain_order = [n for n, _ in plain.top_authorities(10)]
        weighted_order = [n for n, _ in weighted.top_authorities(10)]
        assert plain_order == weighted_order

    def test_empty_graph(self) -> None:
        assert bharat_henzinger(LinkGraph()).converged
