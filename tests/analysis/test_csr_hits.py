"""Parity tests: CSR matvec link-analysis kernels vs dict reference.

The CSR kernels (:mod:`repro.perf.csr_hits`) replace the dict-walking
HITS/Bharat-Henzinger loops inside the retraining path; they must agree
with the reference formulations within 1e-9 per node on random graphs,
including iteration counts and convergence flags.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.distillation import (
    bharat_henzinger,
    bharat_henzinger_reference,
)
from repro.analysis.graph import LinkGraph
from repro.analysis.hits import hits, hits_reference
from repro.perf.csr_hits import CsrAdjacency


def random_graph(
    nodes: int, out_degree: int, seed: int, isolated: int = 0
) -> LinkGraph:
    rng = np.random.default_rng(seed)
    graph = LinkGraph()
    for node in range(nodes):
        graph.add_node(node, host=f"host{node % 17}.example")
    targets = rng.integers(0, nodes, size=(nodes, out_degree))
    for source in range(nodes):
        for target in targets[source]:
            graph.add_edge(source, int(target))
    for i in range(isolated):
        graph.add_node(f"island{i}")
    return graph


def assert_result_parity(kernel, reference, abs_tol: float = 1e-9) -> None:
    assert kernel.iterations == reference.iterations
    assert kernel.converged == reference.converged
    assert set(kernel.authority) == set(reference.authority)
    assert set(kernel.hub) == set(reference.hub)
    for node, score in reference.authority.items():
        assert kernel.authority[node] == pytest.approx(score, abs=abs_tol)
    for node, score in reference.hub.items():
        assert kernel.hub[node] == pytest.approx(score, abs=abs_tol)


class TestHitsParity:
    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_random_graphs(self, seed) -> None:
        graph = random_graph(nodes=250, out_degree=5, seed=seed, isolated=4)
        assert_result_parity(hits(graph), hits_reference(graph))

    def test_fixed_iteration_budget(self) -> None:
        graph = random_graph(nodes=120, out_degree=4, seed=7)
        kernel = hits(graph, max_iterations=3, tolerance=0.0)
        reference = hits_reference(graph, max_iterations=3, tolerance=0.0)
        assert kernel.iterations == reference.iterations == 3
        assert not kernel.converged
        assert_result_parity(kernel, reference)

    def test_empty_graph(self) -> None:
        assert hits(LinkGraph()).converged
        assert hits(LinkGraph()).authority == {}

    def test_edgeless_graph(self) -> None:
        graph = LinkGraph()
        for i in range(5):
            graph.add_node(i)
        assert_result_parity(hits(graph), hits_reference(graph))

    def test_non_integer_nodes(self) -> None:
        graph = LinkGraph()
        graph.add_edge("hub", "auth1")
        graph.add_edge("hub", "auth2")
        graph.add_edge(("tuple", "node"), "auth1")
        assert_result_parity(hits(graph), hits_reference(graph))


class TestBharatHenzingerParity:
    @pytest.mark.parametrize("seed", [5, 19, 101])
    def test_random_graphs_with_relevance(self, seed) -> None:
        graph = random_graph(nodes=200, out_degree=5, seed=seed, isolated=3)
        rng = np.random.default_rng(seed + 1)
        relevance = {
            node: float(rng.uniform(0.05, 1.0)) for node in graph.nodes
        }
        kernel = bharat_henzinger(graph, relevance=relevance)
        reference = bharat_henzinger_reference(graph, relevance=relevance)
        assert_result_parity(kernel, reference)

    def test_without_relevance_defaults_to_one(self) -> None:
        graph = random_graph(nodes=150, out_degree=4, seed=13)
        assert_result_parity(
            bharat_henzinger(graph), bharat_henzinger_reference(graph)
        )

    def test_ranking_agreement(self) -> None:
        graph = random_graph(nodes=300, out_degree=6, seed=23)
        kernel = bharat_henzinger(graph)
        reference = bharat_henzinger_reference(graph)
        assert [n for n, _ in kernel.top_authorities(10)] == [
            n for n, _ in reference.top_authorities(10)
        ]
        assert [n for n, _ in kernel.top_hubs(10)] == [
            n for n, _ in reference.top_hubs(10)
        ]


class TestCsrAdjacency:
    def test_from_graph_shapes(self) -> None:
        graph = random_graph(nodes=40, out_degree=3, seed=2)
        adjacency = CsrAdjacency.from_graph(graph)
        assert adjacency.matrix.shape == (len(graph), len(graph))
        assert adjacency.matrix.nnz == graph.edge_count()
        for source, target in graph.edges():
            row = adjacency.index[source]
            column = adjacency.index[target]
            assert adjacency.matrix[row, column] == 1.0

    def test_weight_of_applies_per_edge(self) -> None:
        graph = LinkGraph()
        graph.add_edge("a", "b")
        graph.add_edge("a", "c")
        adjacency = CsrAdjacency.from_graph(
            graph, weight_of=lambda p, q: 2.0 if q == "b" else 0.5
        )
        index = adjacency.index
        assert adjacency.matrix[index["a"], index["b"]] == 2.0
        assert adjacency.matrix[index["a"], index["c"]] == 0.5
