"""Cross-check our HITS implementation against networkx."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.graph import LinkGraph
from repro.analysis.hits import hits


def random_graph(n_nodes: int, edges: list[tuple[int, int]]) -> LinkGraph:
    graph = LinkGraph()
    for node in range(n_nodes):
        graph.add_node(node)
    for source, target in edges:
        graph.add_edge(source, target)
    return graph


edge_lists = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11)).filter(
        lambda e: e[0] != e[1]
    ),
    min_size=3,
    max_size=40,
)


@given(edge_lists)
@settings(max_examples=40, deadline=None)
def test_matches_networkx_hits(edges) -> None:
    """Authority/hub scores agree with networkx up to normalisation.

    Graphs whose A^T A has a (near-)degenerate principal eigenvalue are
    skipped: there the HITS fixed point is not unique and both
    implementations legitimately return different vectors.
    """
    adjacency = np.zeros((12, 12))
    for source, target in edges:
        adjacency[source, target] = 1.0
    eigenvalues = np.sort(np.linalg.eigvalsh(adjacency.T @ adjacency))
    assume(eigenvalues[-1] > 1e-9)
    assume(eigenvalues[-1] - eigenvalues[-2] > 1e-6 * eigenvalues[-1])
    graph = random_graph(12, edges)
    ours = hits(graph, max_iterations=500, tolerance=1e-12)
    nx_graph = nx.DiGraph()
    nx_graph.add_nodes_from(range(12))
    nx_graph.add_edges_from(set(edges))
    try:
        nx_hubs, nx_auths = nx.hits(nx_graph, max_iter=1000, tol=1e-12)
    except nx.PowerIterationFailedConvergence:  # pragma: no cover
        return
    # networkx normalises to sum=1; ours to L2=1 -- compare directions
    ours_auth = np.array([ours.authority[n] for n in range(12)])
    nx_auth = np.array([nx_auths[n] for n in range(12)])
    if np.linalg.norm(ours_auth) > 0 and np.linalg.norm(nx_auth) > 0:
        cos = (ours_auth @ nx_auth) / (
            np.linalg.norm(ours_auth) * np.linalg.norm(nx_auth)
        )
        assert cos == pytest.approx(1.0, abs=1e-4)
    ours_hub = np.array([ours.hub[n] for n in range(12)])
    nx_hub = np.array([nx_hubs[n] for n in range(12)])
    if np.linalg.norm(ours_hub) > 0 and np.linalg.norm(nx_hub) > 0:
        cos = (ours_hub @ nx_hub) / (
            np.linalg.norm(ours_hub) * np.linalg.norm(nx_hub)
        )
        assert cos == pytest.approx(1.0, abs=1e-4)
