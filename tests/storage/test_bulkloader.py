"""Tests for workspace batching and the bulk loader."""

from __future__ import annotations

import pytest

from repro.storage.bulkloader import BulkLoader
from repro.storage.database import Database


def topic_row(i: int) -> dict:
    return {"topic": f"t{i}", "parent": None, "depth": 0}


class TestBulkLoader:
    def test_batch_size_must_be_positive(self) -> None:
        with pytest.raises(ValueError):
            BulkLoader(Database(), batch_size=0)

    def test_rows_buffered_until_batch_full(self) -> None:
        loader = BulkLoader(Database(), batch_size=10)
        for i in range(9):
            loader.add(0, "topics", topic_row(i))
        assert loader.rows_loaded == 0
        assert loader.pending == 9
        loader.add(0, "topics", topic_row(9))
        assert loader.rows_loaded == 10
        assert loader.pending == 0
        assert loader.flushes == 1

    def test_flush_all_drains_partial_buffers(self) -> None:
        database = Database()
        loader = BulkLoader(database, batch_size=100)
        for i in range(7):
            loader.add(0, "topics", topic_row(i))
        assert loader.flush_all() == 7
        assert len(database["topics"]) == 7
        assert loader.flush_all() == 0  # idempotent when empty

    def test_workspaces_are_per_thread(self) -> None:
        loader = BulkLoader(Database(), batch_size=5)
        for thread in range(3):
            for i in range(4):
                loader.add(thread, "topics", topic_row(thread * 10 + i))
        # no single workspace reached the batch size
        assert loader.rows_loaded == 0
        assert loader.pending == 12
        assert loader.flush_all() == 12

    def test_batching_reduces_statement_count(self) -> None:
        """The efficiency lesson of section 4.1: one statement per batch."""
        batched = Database()
        loader = BulkLoader(batched, batch_size=50)
        for i in range(200):
            loader.add(0, "topics", topic_row(i))
        loader.flush_all()

        row_at_a_time = Database()
        for i in range(200):
            row_at_a_time["topics"].insert(topic_row(i))

        assert batched["topics"].statements == 4
        assert row_at_a_time["topics"].statements == 200
        assert len(batched["topics"]) == len(row_at_a_time["topics"])

    def test_multiple_relations_per_workspace(self) -> None:
        database = Database()
        loader = BulkLoader(database, batch_size=100)
        loader.add(0, "topics", topic_row(1))
        loader.add(0, "hosts", {"host": "h", "ip": None, "state": "ok", "failures": 0})
        loader.flush_all()
        assert len(database["topics"]) == 1
        assert len(database["hosts"]) == 1
