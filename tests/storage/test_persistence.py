"""Tests for database dump/restore."""

from __future__ import annotations

import json

import pytest

from repro.errors import StorageError
from repro.storage.database import Database
from repro.storage.persistence import dump_database, load_database


def populated_database() -> Database:
    database = Database()
    database["topics"].insert({"topic": "db", "parent": None, "depth": 0})
    database["documents"].insert({
        "doc_id": 1, "url": "http://a/", "host": "a", "mime": "text/html",
        "size": 100, "title": "t", "topic": "db", "confidence": 0.5,
        "crawl_depth": 0, "fetched_at": 1.0, "page_id": 7,
    })
    database["terms"].insert({"doc_id": 1, "term": "databas", "tf": 3})
    return database


class TestRoundTrip:
    def test_dump_and_load(self, tmp_path) -> None:
        database = populated_database()
        rows = dump_database(database, tmp_path)
        assert rows == 3
        restored = load_database(tmp_path)
        assert restored.total_rows == 3
        assert restored["documents"].get(1)["url"] == "http://a/"
        assert restored["terms"].lookup(("term",), "databas")

    def test_indexes_rebuilt_after_load(self, tmp_path) -> None:
        dump_database(populated_database(), tmp_path)
        restored = load_database(tmp_path)
        hits = restored["documents"].lookup(("topic",), "db")
        assert len(hits) == 1

    def test_empty_database_round_trips(self, tmp_path) -> None:
        dump_database(Database(), tmp_path)
        restored = load_database(tmp_path)
        assert restored.total_rows == 0


class TestFailureModes:
    def test_missing_manifest(self, tmp_path) -> None:
        with pytest.raises(StorageError):
            load_database(tmp_path)

    def test_wrong_format_version(self, tmp_path) -> None:
        dump_database(Database(), tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest["format_version"] = 99
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StorageError):
            load_database(tmp_path)

    def test_schema_mismatch_detected(self, tmp_path) -> None:
        dump_database(populated_database(), tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest["relations"]["documents"]["columns"] = ["doc_id", "zzz"]
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StorageError):
            load_database(tmp_path)

    def test_row_count_mismatch_detected(self, tmp_path) -> None:
        dump_database(populated_database(), tmp_path)
        (tmp_path / "terms.jsonl").write_text("")  # truncate
        with pytest.raises(StorageError):
            load_database(tmp_path)
