"""Tests for relation schema declarations and row validation."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.storage.schema import BINGO_SCHEMA, Column, RelationSchema


def simple_schema() -> RelationSchema:
    return RelationSchema(
        name="t",
        columns=(
            Column("id", int),
            Column("name", str),
            Column("score", float, nullable=True),
        ),
        primary_key=("id",),
        indexes=(("name",),),
    )


class TestColumn:
    def test_accepts_matching_type(self) -> None:
        Column("x", int).check(5)

    def test_rejects_wrong_type(self) -> None:
        with pytest.raises(SchemaError):
            Column("x", int).check("five")

    def test_nullable(self) -> None:
        Column("x", str, nullable=True).check(None)
        with pytest.raises(SchemaError):
            Column("x", str).check(None)

    def test_int_accepted_for_float_column(self) -> None:
        Column("x", float).check(3)


class TestRelationSchema:
    def test_validate_row_ok(self) -> None:
        simple_schema().validate_row({"id": 1, "name": "a", "score": None})

    def test_unknown_column_rejected(self) -> None:
        with pytest.raises(SchemaError):
            simple_schema().validate_row({"id": 1, "name": "a", "zzz": 1})

    def test_missing_non_nullable_rejected(self) -> None:
        with pytest.raises(SchemaError):
            simple_schema().validate_row({"id": 1})

    def test_duplicate_columns_rejected(self) -> None:
        with pytest.raises(SchemaError):
            RelationSchema(
                "bad", (Column("a", int), Column("a", int)), ("a",)
            )

    def test_key_over_unknown_column_rejected(self) -> None:
        with pytest.raises(SchemaError):
            RelationSchema("bad", (Column("a", int),), ("zzz",))

    def test_index_over_unknown_column_rejected(self) -> None:
        with pytest.raises(SchemaError):
            RelationSchema(
                "bad", (Column("a", int),), ("a",), indexes=(("zzz",),)
            )


class TestBingoSchema:
    def test_has_24_flat_relations(self) -> None:
        assert len(BINGO_SCHEMA) == 24

    def test_core_relations_present(self) -> None:
        for name in [
            "documents", "terms", "links", "anchor_texts", "features",
            "training_documents", "archetypes", "crawl_frontier",
            "authority_scores", "hosts", "duplicates", "redirects",
        ]:
            assert name in BINGO_SCHEMA

    def test_every_relation_has_primary_key(self) -> None:
        for schema in BINGO_SCHEMA.values():
            assert schema.primary_key

    def test_documents_indexed_by_url_and_topic(self) -> None:
        indexes = BINGO_SCHEMA["documents"].indexes
        assert ("url",) in indexes
        assert ("topic",) in indexes
