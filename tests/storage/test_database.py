"""Tests for the embedded relational store."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.database import Database, Relation
from repro.storage.schema import Column, RelationSchema


def make_relation() -> Relation:
    return Relation(
        RelationSchema(
            name="docs",
            columns=(
                Column("doc_id", int),
                Column("url", str),
                Column("topic", str, nullable=True),
            ),
            primary_key=("doc_id",),
            indexes=(("url",), ("topic",)),
        )
    )


class TestRelation:
    def test_insert_and_get(self) -> None:
        rel = make_relation()
        rel.insert({"doc_id": 1, "url": "http://a/", "topic": "db"})
        assert rel.get(1)["url"] == "http://a/"
        assert len(rel) == 1

    def test_duplicate_pk_rejected(self) -> None:
        rel = make_relation()
        rel.insert({"doc_id": 1, "url": "http://a/", "topic": None})
        with pytest.raises(StorageError):
            rel.insert({"doc_id": 1, "url": "http://b/", "topic": None})

    def test_index_lookup(self) -> None:
        rel = make_relation()
        rel.insert({"doc_id": 1, "url": "http://a/", "topic": "db"})
        rel.insert({"doc_id": 2, "url": "http://b/", "topic": "db"})
        rel.insert({"doc_id": 3, "url": "http://c/", "topic": "ir"})
        assert len(rel.lookup(("topic",), "db")) == 2
        assert rel.lookup(("url",), "http://c/")[0]["doc_id"] == 3
        assert rel.lookup(("topic",), "none-such") == []

    def test_lookup_on_undeclared_index_raises(self) -> None:
        rel = make_relation()
        with pytest.raises(StorageError):
            rel.lookup(("doc_id",), 1)

    def test_scan_with_predicate(self) -> None:
        rel = make_relation()
        for i in range(5):
            rel.insert({"doc_id": i, "url": f"http://{i}/", "topic": None})
        assert len(rel.scan(lambda r: r["doc_id"] % 2 == 0)) == 3
        assert len(rel.scan()) == 5

    def test_delete_maintains_indexes(self) -> None:
        rel = make_relation()
        rel.insert({"doc_id": 1, "url": "http://a/", "topic": "db"})
        rel.insert({"doc_id": 2, "url": "http://b/", "topic": "db"})
        assert rel.delete(topic="db") == 2
        assert rel.lookup(("topic",), "db") == []
        assert len(rel) == 0

    def test_update_reindexes(self) -> None:
        rel = make_relation()
        rel.insert({"doc_id": 1, "url": "http://a/", "topic": "db"})
        rel.update((1,), topic="ir")
        assert rel.lookup(("topic",), "db") == []
        assert rel.lookup(("topic",), "ir")[0]["doc_id"] == 1

    def test_update_unknown_key_raises(self) -> None:
        with pytest.raises(StorageError):
            make_relation().update((9,), topic="x")

    def test_update_key_column_rejected(self) -> None:
        rel = make_relation()
        rel.insert({"doc_id": 1, "url": "http://a/", "topic": None})
        with pytest.raises(StorageError):
            rel.update((1,), doc_id=2)

    def test_upsert_replaces(self) -> None:
        rel = make_relation()
        rel.upsert({"doc_id": 1, "url": "http://a/", "topic": "db"})
        rel.upsert({"doc_id": 1, "url": "http://a2/", "topic": "ir"})
        assert len(rel) == 1
        assert rel.get(1)["url"] == "http://a2/"
        assert rel.lookup(("url",), "http://a/") == []

    def test_bulk_insert_counts_one_statement(self) -> None:
        rel = make_relation()
        rows = [
            {"doc_id": i, "url": f"http://{i}/", "topic": None}
            for i in range(50)
        ]
        assert rel.bulk_insert(rows) == 50
        assert rel.statements == 1
        assert len(rel) == 50

    def test_contains(self) -> None:
        rel = make_relation()
        rel.insert({"doc_id": 7, "url": "http://x/", "topic": None})
        assert (7,) in rel
        assert (8,) not in rel

    @given(st.lists(st.integers(min_value=0, max_value=200), unique=True, max_size=60))
    def test_insert_then_get_roundtrip(self, ids: list[int]) -> None:
        rel = make_relation()
        for i in ids:
            rel.insert({"doc_id": i, "url": f"http://{i}/", "topic": None})
        for i in ids:
            assert rel.get(i)["doc_id"] == i
        assert len(rel) == len(ids)


class TestDatabase:
    def test_default_schema_loaded(self) -> None:
        database = Database()
        assert len(database.relations) == 24
        assert database["documents"].schema.name == "documents"

    def test_unknown_relation_raises(self) -> None:
        with pytest.raises(StorageError):
            Database().table("nope")

    def test_total_rows_and_statements(self) -> None:
        database = Database()
        database["topics"].insert({"topic": "db", "parent": None, "depth": 0})
        database["topics"].insert({"topic": "ir", "parent": None, "depth": 0})
        assert database.total_rows == 2
        assert database.total_statements == 2

    def test_validate_flag_disables_checks(self) -> None:
        database = Database(validate=False)
        # wrong type slips through when validation is off (fast path)
        database["topics"].insert({"topic": 5, "parent": None, "depth": "x"})
        assert database.total_rows == 1
