"""Session-wide fixtures shared by all test packages."""

from __future__ import annotations

import pytest

from repro.web import SyntheticWeb, WebGraphConfig


def small_web_config(seed: int = 7, **overrides) -> WebGraphConfig:
    defaults = dict(
        seed=seed,
        target_researchers=40,
        other_researchers=12,
        universities=10,
        hubs_per_topic=3,
        background_hosts_per_category=3,
        pages_per_background_host=3,
        directory_pages_per_category=4,
    )
    defaults.update(overrides)
    return WebGraphConfig(**defaults)


@pytest.fixture(scope="session")
def small_web() -> SyntheticWeb:
    return SyntheticWeb.generate(small_web_config())


@pytest.fixture(scope="session")
def small_expert_web() -> SyntheticWeb:
    return SyntheticWeb.generate_expert(seed=7)
