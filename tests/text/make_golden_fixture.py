"""Regenerate the golden tokenizer-parity corpus.

Usage::

    PYTHONPATH=src python tests/text/make_golden_fixture.py

Writes ``tests/text/golden_corpus.json``: a corpus of HTML pages with
the full analyzer output (title, text, tokens, links, anchor terms) as
produced by :mod:`repro.text.reference` -- the frozen pre-scanner
implementation.  ``tests/text/test_golden_parity.py`` asserts the
single-pass scanner reproduces every expectation byte for byte.

The corpus deliberately EXCLUDES constructs where the scanner diverges
from the reference on purpose (these are covered by targeted regression
tests instead):

* HTML entities (``&amp;`` ...) -- the scanner decodes them, the
  reference leaks ``amp``/``quot`` as terms;
* ``<title>`` inside comments or script/style blocks -- the reference
  extracts it (bug), the scanner does not;
* anchors inside comments/script blocks, and unterminated comments or
  script blocks -- the reference leaks their content;
* ``<scriptx>``-style tag-name prefixes and ``>`` inside quoted
  attribute values, where the reference's regexes misbracket.

Everything else -- including plenty of malformed markup -- is fair
game and must be bit-identical.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro.text.reference import tokenize_html_reference  # noqa: E402

FIXTURE = Path(__file__).parent / "golden_corpus.json"

# -- handcrafted pages -------------------------------------------------

WELL_FORMED = [
    # plain page with title, headings, paragraph text
    "<html><head><title>Frequent Itemset Mining</title></head>"
    "<body><h1>Association Rules</h1><p>Mining frequent itemsets over "
    "transactional databases is a classic data mining problem. The "
    "apriori algorithm prunes candidate itemsets aggressively.</p>"
    "</body></html>",
    # title with attributes on the tag
    '<html><head><title id="t" lang="en">Portal Generation</title></head>'
    "<body><p>Generating information portals requires focused crawling "
    "and document classification with support vector machines.</p></body>",
    # links: double-quoted, single-quoted, unquoted hrefs
    '<body><a href="http://a.example/x">support vector machines</a> and '
    "<a href='http://b.example/y'>focused crawler design</a> plus "
    "<a href=http://c.example/z>hyperlink induced topic search</a></body>",
    # duplicate links accumulate anchor terms under one key
    '<p><a href="http://dup.example/">database systems</a> middle text '
    '<a href="http://dup.example/">transaction processing</a></p>',
    # anchor whose text is pure navigational boilerplate (no terms kept)
    '<p><a href="http://nav.example/next">click here</a> for the '
    '<a href="http://nav.example/paper">conference paper archive</a></p>',
    # empty href is skipped entirely
    '<p><a href="">orphaned anchor text</a> trailing words</p>',
    # anchor with nested markup in its text
    '<div><a href="http://x/p"><b>relational</b> <i>query</i> '
    "optimization</a></div>",
    # anchor element without an href attribute
    '<p><a name="s2">section heading anchor</a> ordinary prose</p>',
    # a name= anchor followed by a real href anchor
    '<p><a name="top">jump target</a> then '
    '<a href="http://real.example/">expert web search</a></p>',
    # comments, scripts and styles interleaved with visible text
    "<html><head><title>Hidden Machinery</title>"
    "<script type='text/javascript'>var crawler = 'invisible';</script>"
    "<style>.focus { border: 1px }</style></head><body>"
    "<!-- navigation boilerplate -->Visible crawler "
    "<b>frontier</b> management<!-- trailing note --></body></html>",
    # multi-line script with angle-bracket-free code
    "<body><script>\nfor (i = 0; i < 10; i++) { queue.push(i); }\n"
    "</script>Breadth first ordering beats depth first here.</body>",
    # uppercase tags and mixed-case title
    "<HTML><HEAD><TITLE>Case Insensitive Markup</TITLE></HEAD>"
    "<BODY><P>UPPERCASE tags are still MARKUP.</P></BODY></HTML>",
    # apostrophe words: leading/trailing quotes stripped, inner kept
    "<p>the crawler's frontier isn't 'empty' and won't o'erflow</p>",
    # min-length boundary: single letters dropped, digits inside words kept
    "<p>a b2b x y12 i18n l10n c world wide web consortium</p>",
    # stopword-heavy sentence collapses to few tokens
    "<p>it is the and of to in that was he for on are as with his</p>",
    # numbers never start words; embedded digits survive
    "<p>3 blind mice saw 42 documents in b00m format from mpeg7 layers</p>",
    # whitespace and newline soup between words
    "<p>\n\n  sparse \t vector \r\n normalisation  \n cache </p>",
    # heading hierarchy and lists
    "<h1>Crawler Architecture</h1><h2>Frontier</h2><ul><li>priority "
    "queues</li><li>politeness budget</li></ul><h2>Parser</h2>"
    "<ol><li>tag soup tolerance</li></ol>",
    # long repeated vocabulary (exercises the stem memo hit path)
    "<p>" + " ".join(
        ["classification classifier classifying classified"] * 12
    ) + "</p>",
    # title with inner markup: reference keeps the raw span
    "<head><title>Deep <b>Web</b> Portals</title></head>"
    "<body>surfacing hidden databases</body>",
    # empty body, title only
    "<html><head><title>Just A Title</title></head><body></body></html>",
    # totally empty page and whitespace page
    "",
    "   \n\t  ",
    # no markup at all: plain text passes through
    "focused crawling with hierarchical taxonomies and training data",
]

MALFORMED = [
    # unclosed tag at EOF: '<a href=x' never becomes a tag; words leak
    "<p>visible words then <a href=http://tail.example/unclosed",
    # unclosed anchor: no </a> so no link in either implementation
    '<p><a href="http://never.example/">anchor text that never closes '
    "and body continues with ranking signals</p>",
    # stray angle brackets around plain text
    "<p>comparison a < b and b > c holds</p>",
    # lone '<' at end of document
    "<p>trailing less than <",
    # lone '>' floating in text
    "<p>greater > than floats freely</p>",
    # tag spanning multiple lines
    '<p><a\nhref="http://multi.example/line"\nclass="x">newline '
    "separated attributes</a></p>",
    # nested anchors: reference regex closes at the first </a>
    '<p><a href="http://outer.example/"><a href="http://inner.example/">'
    "nested anchor text</a> outer tail</a></p>",
    # anchor with href appearing after other attributes
    '<p><a class="ext" rel="nofollow" href="http://attr.example/q">'
    "attribute ordering</a></p>",
    # href with surrounding whitespace inside the quotes
    '<p><a href="  http://pad.example/  ">padded target</a></p>',
    # unquoted href terminated by '>' directly
    "<p><a href=http://bare.example/page>bare href termination</a></p>",
    # empty anchor text
    '<p><a href="http://silent.example/"></a> after silent anchor</p>',
    # anchor text that is only markup
    '<p><a href="http://markup.example/"><img src="x.png"></a> tail</p>',
    # self-closing-ish tags and void elements
    '<p>line one<br/>line two<hr>line three<img src="y.png"/></p>',
    # doctype and processing-instruction-ish prologue
    "<!DOCTYPE html><?xml version='1.0'?><html><body>prologue "
    "tolerance</body></html>",
    # comment between words (stripped to a separator in both)
    "<p>alpha<!-- hidden words inside -->beta gamma</p>",
    # NOTE: anchors *inside* comments are deliberately excluded -- the
    # reference extracts them (it scans raw HTML for anchors before
    # stripping comments), the scanner does not.  See
    # tests/text/test_scanner_fixes.py for the divergence tests.
    # script containing a comment marker
    "<body><script>// <!-- not a real comment\nx()</script>real "
    "content</body>",
    # style block with braces and selectors
    "<style>a:hover { color: blue; } .nav > li { float: left }</style>"
    "<p>styled page content</p>",
    # two titles: first one wins in both implementations
    "<title>First Title</title><title>Second Title</title><p>body</p>",
    # unclosed title: no title extracted by either
    "<head><title>Never Closed<body>words after broken head",
    # attribute named data-href must not register as a link
    '<p><a data-href="http://fake.example/">no real href here</a></p>',
    # tag with slash soup
    "<p></////><b>resilient</b> parsing</p>",
    # words glued to tags without whitespace
    "<p>alpha<b>beta</b>gamma<i>delta</i>epsilon</p>",
    # CRLF line endings everywhere
    "<p>carriage\r\nreturn\r\nseparated\r\nwords</p>\r\n",
    # very long single word
    "<p>" + "supercalifragilistic" * 5 + " short tail</p>",
]


def _rendered_pages(count: int = 12) -> list[str]:
    """Deterministic pages from the synthetic web, post content-handler.

    Skips any page whose HTML contains constructs the scanner treats
    differently on purpose (entities, titles inside comments).
    """
    from benchmarks.kernel_runner import _crawl_web  # type: ignore
    from repro.text.handlers import default_registry

    web = _crawl_web(seed=7)
    registry = default_registry()
    picked: list[str] = []
    for page in web.pages:
        payload = web.renderer.payload(page)
        converted = registry.convert(payload, mime=None)
        if converted is None:
            continue
        html = converted.html
        if "&" in html:
            continue
        if re.search(r"<!--.*?<title", html, re.DOTALL | re.IGNORECASE):
            continue
        picked.append(html)
        if len(picked) >= count:
            break
    return picked


def build_corpus() -> list[dict]:
    pages: list[tuple[str, str]] = []
    for i, html in enumerate(WELL_FORMED):
        pages.append((f"well_formed_{i:02d}", html))
    for i, html in enumerate(MALFORMED):
        pages.append((f"malformed_{i:02d}", html))
    for i, html in enumerate(_rendered_pages()):
        pages.append((f"rendered_{i:02d}", html))

    corpus = []
    for page_id, html in pages:
        doc = tokenize_html_reference(html)
        corpus.append({
            "id": page_id,
            "html": html,
            "title": doc.title,
            "text": doc.text,
            "tokens": [
                [t.stem, t.surface, t.position] for t in doc.tokens
            ],
            "links": doc.links,
            "anchor_terms": doc.anchor_terms,
        })
    return corpus


def main() -> None:
    corpus = build_corpus()
    FIXTURE.write_text(
        json.dumps(corpus, indent=1, sort_keys=True) + "\n"
    )
    n_tokens = sum(len(p["tokens"]) for p in corpus)
    print(f"wrote {FIXTURE}: {len(corpus)} pages, {n_tokens} tokens")


if __name__ == "__main__":
    main()
