"""Tests for sparse vectors, lazy idf and tf*idf weighting."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.vectorizer import (
    CorpusStatistics,
    SparseVector,
    TfIdfVectorizer,
    cosine_similarity,
)

terms = st.text(alphabet="abcdef", min_size=1, max_size=4)
vectors = st.dictionaries(
    terms, st.floats(min_value=-10, max_value=10, allow_nan=False), max_size=8
).map(SparseVector)


class TestSparseVector:
    def test_dot_product(self) -> None:
        a = SparseVector({"x": 2.0, "y": 1.0})
        b = SparseVector({"y": 3.0, "z": 5.0})
        assert a.dot(b) == pytest.approx(3.0)

    def test_norm(self) -> None:
        v = SparseVector({"a": 3.0, "b": 4.0})
        assert v.norm == pytest.approx(5.0)

    def test_normalized_unit_length(self) -> None:
        v = SparseVector({"a": 3.0, "b": 4.0}).normalized()
        assert v.norm == pytest.approx(1.0)

    def test_normalized_zero_vector_is_identity(self) -> None:
        v = SparseVector({})
        assert v.normalized() is v

    def test_project(self) -> None:
        v = SparseVector({"a": 1.0, "b": 2.0, "c": 3.0})
        p = v.project(["a", "c", "zz"])
        assert dict(p) == {"a": 1.0, "c": 3.0}

    def test_top(self) -> None:
        v = SparseVector({"a": 1.0, "b": 3.0, "c": 2.0})
        assert v.top(2) == [("b", 3.0), ("c", 2.0)]

    @given(vectors, vectors)
    def test_dot_symmetry(self, a: SparseVector, b: SparseVector) -> None:
        assert a.dot(b) == pytest.approx(b.dot(a))

    @given(vectors)
    def test_cosine_self_is_one_for_nonzero(self, v: SparseVector) -> None:
        if v.norm > 1e-9:
            assert cosine_similarity(v, v) == pytest.approx(1.0)

    @given(vectors, vectors)
    def test_cosine_bounded(self, a: SparseVector, b: SparseVector) -> None:
        c = cosine_similarity(a, b)
        assert -1.0 - 1e-9 <= c <= 1.0 + 1e-9


class TestCorpusStatistics:
    def test_idf_is_one_before_any_snapshot(self) -> None:
        stats = CorpusStatistics()
        assert stats.idf("anything") == 1.0

    def test_lazy_refresh_contract(self) -> None:
        stats = CorpusStatistics()
        stats.add_document(["data", "mining"])
        stats.add_document(["data"])
        # live counts updated, snapshot still empty -> idf unchanged
        assert stats.idf("data") == 1.0
        stats.refresh()
        assert stats.snapshot_size == 2
        assert stats.idf("data") == pytest.approx(math.log(1 + 2 / 2))
        assert stats.idf("mining") == pytest.approx(math.log(1 + 2 / 1))

    def test_unseen_term_gets_max_idf(self) -> None:
        stats = CorpusStatistics()
        for _ in range(9):
            stats.add_document(["common"])
        stats.refresh()
        assert stats.idf("novel") == pytest.approx(math.log(1 + 9))
        assert stats.idf("novel") > stats.idf("common")

    def test_duplicate_terms_count_once_per_document(self) -> None:
        stats = CorpusStatistics()
        stats.add_document(["x", "x", "x"])
        stats.refresh()
        assert stats.document_frequency["x"] == 1


class TestTfIdfVectorizer:
    def test_rare_term_outweighs_common_term(self) -> None:
        vec = TfIdfVectorizer()
        vec.ingest(["common", "rare"])
        for _ in range(20):
            vec.ingest(["common"])
        vec.refresh()
        v = vec.vectorize(["common", "rare"])
        assert v.get("rare") > v.get("common")

    def test_log_tf_dampening(self) -> None:
        vec = TfIdfVectorizer()
        v = vec.vectorize(["t"] * 8 + ["u"])
        # idf == 1 (no snapshot); weight ratio is (1+log 8) not 8.
        assert v.get("t") / v.get("u") == pytest.approx(1 + math.log(8))

    def test_vectorize_counts_matches_vectorize(self) -> None:
        vec = TfIdfVectorizer()
        a = vec.vectorize(["a", "a", "b"])
        b = vec.vectorize_counts({"a": 2, "b": 1, "zero": 0})
        assert dict(a) == dict(b)

    @given(st.lists(terms, max_size=30))
    def test_vector_has_one_weight_per_distinct_term(self, doc: list[str]) -> None:
        vec = TfIdfVectorizer()
        v = vec.vectorize(doc)
        assert len(v) == len(set(doc))
        assert all(w > 0 for _, w in v)
