"""Tests for content handlers (paper section 2.2)."""

from __future__ import annotations

import pytest

from repro.text.handlers import (
    ArchiveHandler,
    ConversionResult,
    HandlerRegistry,
    HtmlHandler,
    PdfHandler,
    PowerPointHandler,
    WordHandler,
    default_registry,
)
from repro.text.tokenizer import tokenize_html
from repro.web.model import MimeType


PDF = "%SIM-PDF-1.4\nT:query optimization\nrelational database text\fmore page text [[http://x.example/p|cited paper]]"
WORD = "{\\simrtf1 \\pard database systems draft [[http://y.example/|home]]}"
PPT = "SIM-PPT\ntalk title\fslide 1\n- indexing structures\n- join processing\flinks\n[[http://z.example/|slides source]]"
ARCHIVE = (
    "SIM-ARCHIVE\n"
    "--- member: readme.html\n<html><head><title>t</title></head><body>member one text</body></html>\n"
    "--- member: paper.pdf\n%SIM-PDF-1.4\nT:inner\nmember two text"
)


class TestIndividualHandlers:
    def test_html_pass_through(self) -> None:
        html = "<html><body>hello</body></html>"
        handler = HtmlHandler()
        assert handler.sniff(html)
        assert handler.convert(html) == html

    def test_pdf_conversion(self) -> None:
        handler = PdfHandler()
        assert handler.sniff(PDF)
        html = handler.convert(PDF)
        doc = tokenize_html(html)
        assert doc.title == "query optimization"
        assert "databas" in [t.stem for t in doc.tokens]
        assert doc.links == ["http://x.example/p"]

    def test_word_conversion(self) -> None:
        handler = WordHandler()
        assert handler.sniff(WORD)
        html = handler.convert(WORD)
        doc = tokenize_html(html)
        stems = [t.stem for t in doc.tokens]
        assert "databas" in stems
        assert "pard" not in stems  # control words stripped
        assert doc.links == ["http://y.example/"]

    def test_powerpoint_conversion(self) -> None:
        handler = PowerPointHandler()
        assert handler.sniff(PPT)
        html = handler.convert(PPT)
        doc = tokenize_html(html)
        stems = [t.stem for t in doc.tokens]
        assert "index" in stems
        assert "join" in stems
        assert doc.links == ["http://z.example/"]

    def test_archive_unpacks_members(self) -> None:
        handler = ArchiveHandler(registry=default_registry())
        assert handler.sniff(ARCHIVE)
        html = handler.convert(ARCHIVE)
        assert "member one text" in html
        assert "member two text" in html

    def test_wrong_payload_rejected(self) -> None:
        with pytest.raises(ValueError):
            PdfHandler().convert("not a pdf")
        with pytest.raises(ValueError):
            WordHandler().convert("plain")
        with pytest.raises(ValueError):
            PowerPointHandler().convert("nope")
        with pytest.raises(ValueError):
            ArchiveHandler().convert("zzz")


class TestRegistry:
    def test_dispatch_by_mime(self) -> None:
        registry = HandlerRegistry()
        result = registry.convert(PDF, MimeType.PDF)
        assert isinstance(result, ConversionResult)
        assert result.source_format == "pdf"

    def test_sniff_fallback_when_mime_lies(self) -> None:
        registry = HandlerRegistry()
        # server claims HTML but serves a PDF payload
        result = registry.convert(PDF, MimeType.HTML)
        assert result is not None
        assert result.source_format == "pdf"

    def test_unknown_payload_returns_none(self) -> None:
        registry = HandlerRegistry()
        assert registry.convert("BINARYJUNK\x00\x01", MimeType.VIDEO) is None

    def test_default_registry_is_shared(self) -> None:
        assert default_registry() is default_registry()


class TestEndToEndWithRenderer:
    @pytest.fixture(scope="class")
    def web(self):
        from repro.web import SyntheticWeb, WebGraphConfig

        return SyntheticWeb.generate(
            WebGraphConfig(
                seed=31, target_researchers=40, other_researchers=10,
                universities=8, hubs_per_topic=2,
                background_hosts_per_category=2, pages_per_background_host=2,
                directory_pages_per_category=2,
            )
        )

    @pytest.mark.parametrize(
        "mime",
        [MimeType.PDF, MimeType.WORD, MimeType.POWERPOINT, MimeType.ZIP],
    )
    def test_every_rendered_format_round_trips(self, web, mime) -> None:
        pages = [p for p in web.pages if p.mime == mime]
        if not pages:
            pytest.skip(f"no {mime} pages in this web")
        page = pages[0]
        payload = web.renderer.payload(page)
        assert payload is not None
        result = default_registry().convert(payload, mime)
        assert result is not None
        doc = tokenize_html(result.html)
        assert len(doc.tokens) > 20
        # out-links survive the format conversion
        targets = {web.pages[t].url for t in page.out_links}
        if targets:
            assert targets <= set(doc.links) | targets  # sanity
            assert set(doc.links) & targets or not page.out_links

    def test_pdf_links_fully_preserved(self, web) -> None:
        page = next(
            p for p in web.pages
            if p.mime == MimeType.PDF and p.out_links
        )
        payload = web.renderer.payload(page)
        result = default_registry().convert(payload, MimeType.PDF)
        doc = tokenize_html(result.html)
        expected = {web.pages[t].url for t in page.out_links}
        # every canonical target is reachable via some rendered href
        # (hrefs may point at alias/copy URLs of the same page)
        resolved = set()
        for href in doc.links:
            entry = web.url_map.get(href)
            if entry is not None:
                resolved.add(web.pages[entry[0]].url)
        assert expected <= resolved
