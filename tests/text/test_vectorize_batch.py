"""The batched tf*idf kernel vs the per-document reference weighting.

:func:`repro.perf.text.vectorize_batch` shares the per-term idf gather
and the ``1 + log(tf)`` dampening table across a micro-batch; every
row it produces must still be **bit-identical** (``==`` on floats, not
approx) to :meth:`~repro.text.vectorizer.TfIdfVectorizer.
vectorize_counts` on the same counts, and the rows must not depend on
how the batch was sliced.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.perf.text import vectorize_batch
from repro.text.vectorizer import SparseVector, TfIdfVectorizer

VOCAB = [
    "database", "index", "btree", "query", "join", "transaction",
    "log", "vacuum", "shard", "replica", "cache", "latch",
]


def corpus_vectorizer(seed: int = 13) -> TfIdfVectorizer:
    rng = random.Random(seed)
    vectorizer = TfIdfVectorizer()
    for _ in range(40):
        doc = rng.sample(VOCAB, rng.randint(2, 8))
        vectorizer.ingest(doc)
    vectorizer.refresh()
    return vectorizer


def sample_counts(seed: int = 29, n: int = 24) -> list[Counter]:
    rng = random.Random(seed)
    batch = []
    for _ in range(n):
        counts = Counter({
            term: rng.randint(1, 9)
            for term in rng.sample(VOCAB, rng.randint(1, 7))
        })
        if rng.random() < 0.3:
            counts["unseen-term-%d" % rng.randint(0, 3)] = 2
        batch.append(counts)
    batch.append(Counter())          # empty document
    batch.append(Counter(ghost=0))   # zero count must be skipped
    return batch


def test_rows_bit_identical_to_vectorize_counts() -> None:
    vectorizer = corpus_vectorizer()
    batch = sample_counts()
    rows = vectorize_batch(vectorizer, batch)
    assert len(rows) == len(batch)
    for counts, row in zip(batch, rows):
        reference = vectorizer.vectorize_counts(counts)
        assert isinstance(row, SparseVector)
        assert row.weights == reference.weights  # exact float equality
        assert list(row.weights) == list(reference.weights)
        assert row.norm == reference.norm


@pytest.mark.parametrize("batch_size", [1, 3, 8])
def test_batch_slicing_invariance(batch_size: int) -> None:
    """Rows are identical no matter how the batch is chunked."""
    vectorizer = corpus_vectorizer()
    batch = sample_counts()
    whole = vectorize_batch(vectorizer, batch)
    sliced = []
    for start in range(0, len(batch), batch_size):
        sliced.extend(
            vectorize_batch(vectorizer, batch[start:start + batch_size])
        )
    assert [row.weights for row in sliced] \
        == [row.weights for row in whole]


def test_zero_and_empty_counts_yield_empty_rows() -> None:
    vectorizer = corpus_vectorizer()
    rows = vectorize_batch(vectorizer, [Counter(), Counter(ghost=0)])
    assert rows[0].weights == {} and rows[1].weights == {}
    assert rows[0].norm == 0.0


def test_snapshot_refresh_changes_rows_consistently() -> None:
    """The kernel reads the same snapshot as the reference path: after
    more ingests + refresh, both move together and stay identical."""
    vectorizer = corpus_vectorizer()
    counts = Counter(database=3, vacuum=1)
    before = vectorize_batch(vectorizer, [counts])[0]
    for _ in range(20):
        vectorizer.ingest(["database", "query"])
    vectorizer.refresh()
    after = vectorize_batch(vectorizer, [counts])[0]
    assert after.weights == vectorizer.vectorize_counts(counts).weights
    assert after.weights != before.weights


def test_sparse_vector_norm_is_cached_not_part_of_equality() -> None:
    """The cached norm slot must not affect dataclass semantics."""
    a = SparseVector({"x": 3.0, "y": 4.0})
    b = SparseVector({"x": 3.0, "y": 4.0})
    assert a.norm == 5.0
    assert a == b            # b's norm not yet computed
    assert b.norm == 5.0
    assert a == b
