"""Tests for plain-text and HTML tokenization."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenizer import html_to_text, tokenize, tokenize_html


def test_tokenize_basic_pipeline() -> None:
    tokens = tokenize("The quick databases are indexing documents")
    stems = [token.stem for token in tokens]
    # 'the'/'are' are stopwords; remaining words are stemmed.
    assert "the" not in stems
    assert "are" not in stems
    assert "databas" in stems
    assert "index" in stems
    assert "document" in stems


def test_tokenize_positions_are_sequential() -> None:
    tokens = tokenize("alpha beta gamma delta")
    assert [token.position for token in tokens] == [0, 1, 2, 3]


def test_tokenize_min_length_filter() -> None:
    tokens = tokenize("x yz abc", min_length=3)
    assert [token.surface for token in tokens] == ["abc"]


def test_tokenize_without_stemming() -> None:
    tokens = tokenize("mining patterns", stem=False)
    assert [token.stem for token in tokens] == ["mining", "patterns"]


def test_html_to_text_strips_tags_scripts_comments() -> None:
    html = (
        "<html><head><title>Data Mining</title>"
        "<script>var x = 'junk';</script>"
        "<style>.c { color: red }</style></head>"
        "<body><!-- hidden -->Visible <b>content</b></body></html>"
    )
    text, title = html_to_text(html)
    assert title == "Data Mining"
    assert "Visible" in text
    assert "content" in text
    assert "junk" not in text
    assert "color" not in text
    assert "hidden" not in text


def test_tokenize_html_extracts_links_in_order() -> None:
    html = (
        '<a href="http://a.example/x">first</a> text '
        "<a href='http://b.example/y'>second</a> "
        '<a href=http://c.example/z>third</a>'
    )
    doc = tokenize_html(html)
    assert doc.links == [
        "http://a.example/x",
        "http://b.example/y",
        "http://c.example/z",
    ]


def test_tokenize_html_anchor_terms_use_extended_stopwords() -> None:
    html = (
        '<a href="http://x.example/paper">click here</a>'
        '<a href="http://x.example/mining">frequent pattern mining</a>'
    )
    doc = tokenize_html(html)
    # "click here" is pure navigational boilerplate -> no anchor terms.
    assert "http://x.example/paper" not in doc.anchor_terms
    terms = doc.anchor_terms["http://x.example/mining"]
    assert "mine" in terms
    assert "pattern" in terms


def test_tokenize_html_duplicate_links_preserved() -> None:
    html = '<a href="http://x/">a first</a><a href="http://x/">a second</a>'
    doc = tokenize_html(html)
    assert doc.links == ["http://x/", "http://x/"]
    assert doc.anchor_terms["http://x/"] == ["first", "second"]


def test_tokenize_html_empty_href_skipped() -> None:
    doc = tokenize_html('<a href="">nothing</a> plain words')
    assert doc.links == []


def test_anchor_with_nested_markup() -> None:
    doc = tokenize_html('<a href="http://x/p"><b>database</b> systems</a>')
    assert doc.anchor_terms["http://x/p"] == ["databas", "system"]


@given(st.text(max_size=400))
def test_tokenize_never_crashes(text: str) -> None:
    for token in tokenize(text):
        assert token.stem
        assert token.surface


@given(st.text(max_size=400))
def test_tokenize_html_never_crashes(html: str) -> None:
    doc = tokenize_html(html)
    assert isinstance(doc.links, list)
