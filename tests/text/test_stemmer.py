"""Unit and property tests for the classic Porter stemmer."""

from __future__ import annotations

import string

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.stemmer import PorterStemmer, stem


@pytest.fixture(scope="module")
def stemmer() -> PorterStemmer:
    return PorterStemmer()


# Vocabulary -> stem pairs from the original Porter (1980) paper examples
# plus the stems the BINGO! paper itself reports for its Data Mining topic
# (mine, knowledg, discov, cluster, pattern, genet).
KNOWN_STEMS = [
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    ("happy", "happi"),
    ("sky", "sky"),
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
    # BINGO! paper section 2.3 sample stems:
    ("mining", "mine"),
    ("knowledge", "knowledg"),
    ("discovery", "discoveri"),
    ("patterns", "pattern"),
    ("clustering", "cluster"),
    ("genetic", "genet"),
]


@pytest.mark.parametrize("word,expected", KNOWN_STEMS)
def test_known_stems(stemmer: PorterStemmer, word: str, expected: str) -> None:
    assert stemmer.stem(word) == expected


def test_short_words_untouched(stemmer: PorterStemmer) -> None:
    for word in ["a", "at", "is", "be", "ox"]:
        assert stemmer.stem(word) == word


def test_stemming_is_lowercasing(stemmer: PorterStemmer) -> None:
    assert stemmer.stem("Databases") == stemmer.stem("databases")
    assert stemmer.stem("MINING") == "mine"


def test_module_level_helper_matches_class() -> None:
    stemmer = PorterStemmer()
    for word in ["recovery", "algorithms", "implementation"]:
        assert stem(word) == stemmer.stem(word)


def test_measure_helper() -> None:
    # m counts VC sequences: tr-ee -> 0, tr-oubl-e(s) -> 1/2 etc.
    assert PorterStemmer._measure("tr") == 0
    assert PorterStemmer._measure("ee") == 0
    assert PorterStemmer._measure("tree") == 0
    assert PorterStemmer._measure("by") == 0
    assert PorterStemmer._measure("trouble") == 1
    assert PorterStemmer._measure("oats") == 1
    assert PorterStemmer._measure("trees") == 1
    assert PorterStemmer._measure("ivy") == 1
    assert PorterStemmer._measure("troubles") == 2
    assert PorterStemmer._measure("private") == 2
    assert PorterStemmer._measure("oaten") == 2


@given(st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=20))
def test_stem_is_idempotent_in_practice_no_crash(word: str) -> None:
    """Stemming never crashes and never grows a word by more than one char.

    (Step 1b can add a trailing 'e', e.g. conflat(ed) -> conflate, so the
    output may be at most one character longer than the input stem basis.)
    """
    out = stem(word)
    assert isinstance(out, str)
    assert len(out) <= len(word) + 1


@given(st.text(alphabet=string.ascii_lowercase, min_size=3, max_size=20))
def test_stem_deterministic(word: str) -> None:
    assert stem(word) == stem(word)
