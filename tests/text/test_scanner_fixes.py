"""The scanner's deliberate divergences from the frozen reference.

The golden corpus (``test_golden_parity.py``) pins byte-for-byte parity
on markup the old five-regex pipeline handled correctly.  This module
pins the places where the single-pass scanner *intentionally* behaves
differently -- each one a bug fix, each asserted against both the new
output and the old (wrong) output so the divergence stays documented:

* known HTML entities decode instead of leaking bogus terms
  (``&amp;`` -> ``amp``, ``&quot;`` -> ``quot``);
* numeric references merge with adjacent word characters
  (``x&#65;y`` is one word ``xAy``, not a leaked ``x42``);
* ``<title>`` inside comments or script/style blocks is not extracted;
* anchors inside comments yield no links;
* unterminated comments and script/style blocks swallow their tail
  instead of leaking it into the body text.
"""

from __future__ import annotations

from repro.text.reference import tokenize_html_reference
from repro.text.tokenizer import tokenize_html


def surfaces(doc) -> list[str]:
    return [t.surface for t in doc.tokens]


class TestEntityDecoding:
    def test_named_entities_leak_no_bogus_terms(self) -> None:
        html = (
            "<html><body>AT&amp;T says &quot;hello world&quot;"
            "</body></html>"
        )
        doc = tokenize_html(html)
        assert surfaces(doc) == ["says", "hello", "world"]
        assert "amp" not in surfaces(doc)
        assert "quot" not in surfaces(doc)
        # the reference leaked both -- that is the bug being fixed
        old = tokenize_html_reference(html)
        assert "amp" in surfaces(old) and "quot" in surfaces(old)

    def test_accented_entity_keeps_word_prefix(self) -> None:
        doc = tokenize_html("<p>Caf&eacute; menu</p>")
        assert surfaces(doc) == ["caf", "menu"]
        assert "eacute" not in surfaces(doc)

    def test_numeric_references_merge_into_words(self) -> None:
        doc = tokenize_html("<p>x&#65;y and A&#x42;C</p>")
        assert surfaces(doc) == ["xay", "abc"]
        assert [t.stem for t in doc.tokens] == ["xai", "abc"]
        # old pipeline mangled the decimal form into ``x42``
        assert surfaces(tokenize_html_reference(
            "<p>x&#65;y and A&#x42;C</p>")) == ["x42"]

    def test_unterminated_and_unknown_entities_match_reference(self) -> None:
        """No semicolon / unknown name: both pipelines emit the bare
        name, so parity holds (the fix only covers *known* entities)."""
        for html in ("<p>fish &amp chips</p>",
                     "<p>weird &bogusent; thing</p>"):
            assert surfaces(tokenize_html(html)) \
                == surfaces(tokenize_html_reference(html))

    def test_title_is_entity_decoded(self) -> None:
        doc = tokenize_html("<title>Tom &amp; Jerry</title>")
        assert doc.title == "Tom & Jerry"


class TestTitlePlacement:
    def test_title_inside_comment_ignored(self) -> None:
        html = (
            "<!-- <title>ghost</title> -->"
            "<title>Real</title><p>body</p>"
        )
        doc = tokenize_html(html)
        assert doc.title == "Real"
        # the reference grabbed the commented-out one
        assert tokenize_html_reference(html).title == "ghost"

    def test_title_inside_script_block_ignored(self) -> None:
        html = (
            "<script>var t = '<title>ghost</title>';</script>"
            "<title>Real</title>"
        )
        assert tokenize_html(html).title == "Real"

    def test_first_completed_title_wins(self) -> None:
        html = "<title>One</title><title>Two</title>"
        doc = tokenize_html(html)
        assert doc.title == "One"
        assert doc.title == tokenize_html_reference(html).title


class TestCommentAndBlockSwallowing:
    def test_anchor_inside_comment_yields_no_link(self) -> None:
        html = (
            '<!-- <a href="http://ghost.example/">ghost</a> -->'
            "<p>seen</p>"
        )
        doc = tokenize_html(html)
        assert doc.links == []
        assert doc.anchor_terms == {}
        assert surfaces(doc) == ["seen"]
        # the reference ran link extraction on the RAW html, before
        # comment stripping, so it manufactured a ghost link
        assert tokenize_html_reference(html).links \
            == ["http://ghost.example/"]

    def test_unterminated_comment_swallows_tail(self) -> None:
        html = "visible <!-- hidden tail words"
        doc = tokenize_html(html)
        assert surfaces(doc) == ["visible"]
        assert "hidden" in surfaces(tokenize_html_reference(html))

    def test_unterminated_style_block_swallows_tail(self) -> None:
        html = "<p>shown</p><style>p{} leaked"
        doc = tokenize_html(html)
        assert surfaces(doc) == ["shown"]
        assert "leaked" in surfaces(tokenize_html_reference(html))
