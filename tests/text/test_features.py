"""Tests for the feature spaces of paper section 3.4."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.features import (
    AnalyzedDocument,
    AnchorTextSpace,
    CombinedSpace,
    NeighbourTermSpace,
    TermPairSpace,
    TermSpace,
)
from repro.text.tokenizer import tokenize


def doc(text: str, anchors=(), neighbours=()) -> AnalyzedDocument:
    return AnalyzedDocument(
        tokens=tokenize(text),
        incoming_anchor_terms=list(anchors),
        neighbour_terms=list(neighbours),
    )


class TestTermSpace:
    def test_counts_stems(self) -> None:
        counts = TermSpace().extract(doc("mining mining databases"))
        assert counts["mine"] == 2
        assert counts["databas"] == 1


class TestTermPairSpace:
    def test_pairs_within_window(self) -> None:
        counts = TermPairSpace(window=1).extract(doc("alpha beta gamma"))
        assert counts["alpha~beta"] == 1
        assert counts["beta~gamma"] == 1
        assert "alpha~gamma" not in counts

    def test_wider_window_reaches_farther(self) -> None:
        counts = TermPairSpace(window=2).extract(doc("alpha beta gamma"))
        assert counts["alpha~gamma"] == 1

    def test_pairs_are_order_normalised(self) -> None:
        a = TermPairSpace(window=3).extract(doc("data mining"))
        b = TermPairSpace(window=3).extract(doc("mining data"))
        assert set(a) == set(b)

    def test_self_pairs_excluded(self) -> None:
        counts = TermPairSpace(window=2).extract(doc("echo echo echo"))
        assert not counts

    def test_invalid_window_rejected(self) -> None:
        with pytest.raises(ValueError):
            TermPairSpace(window=0)

    @given(st.lists(st.sampled_from(["aa", "bb", "cc", "dd"]), max_size=15))
    def test_pair_count_bounded_by_window(self, words: list[str]) -> None:
        window = 3
        document = doc(" ".join(words))
        counts = TermPairSpace(window=window).extract(document)
        n = len(document.tokens)
        assert sum(counts.values()) <= n * window


class TestAnchorAndNeighbourSpaces:
    def test_anchor_space_uses_incoming_terms(self) -> None:
        counts = AnchorTextSpace().extract(doc("body", anchors=["mine", "mine"]))
        assert counts["mine"] == 2

    def test_neighbour_space_truncates_to_limit(self) -> None:
        neighbours = ["a"] * 5 + ["b"] * 3 + ["c"]
        counts = NeighbourTermSpace(limit=2).extract(doc("x", neighbours=neighbours))
        assert set(counts) == {"a", "b"}

    def test_neighbour_invalid_limit(self) -> None:
        with pytest.raises(ValueError):
            NeighbourTermSpace(limit=0)


class TestCombinedSpace:
    def test_namespacing_prevents_collisions(self) -> None:
        space = CombinedSpace([TermSpace(), AnchorTextSpace()])
        counts = space.extract(doc("mining", anchors=["mine"]))
        assert counts["term:mine"] == 1
        assert counts["anchor:mine"] == 1

    def test_empty_space_list_rejected(self) -> None:
        with pytest.raises(ValueError):
            CombinedSpace([])

    def test_combination_is_additive(self) -> None:
        space = CombinedSpace([TermSpace(), TermPairSpace(window=2)])
        counts = space.extract(doc("data mining"))
        assert counts["term:data"] == 1
        assert counts["pair:data~mine"] == 1
