"""Baseline round-trip, budgeted matching and line-drift tolerance."""

from __future__ import annotations

import json

import pytest

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.findings import Finding


def _finding(
    path: str = "src/x.py", line: int = 5, rule: str = "no-wall-clock",
    message: str = "wall-clock call",
) -> Finding:
    return Finding(path=path, line=line, col=0, rule=rule, message=message)


class TestRoundTrip:
    def test_save_load_filter_absorbs_everything(self, tmp_path) -> None:
        findings = [_finding(), _finding(line=9), _finding(rule="no-bare-except")]
        baseline = Baseline.from_findings(findings)
        target = tmp_path / "baseline.json"
        baseline.save(target)
        loaded = Baseline.load(target)
        new, grandfathered = loaded.filter(findings)
        assert new == []
        assert len(grandfathered) == 3

    def test_saved_file_is_deterministic(self, tmp_path) -> None:
        findings = [_finding(line=9), _finding()]
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        Baseline.from_findings(findings).save(first)
        Baseline.from_findings(list(reversed(findings))).save(second)
        assert first.read_text() == second.read_text()

    def test_justification_survives_round_trip(self, tmp_path) -> None:
        entry = BaselineEntry(
            rule="no-wall-clock", path="src/x.py", message="m",
            justification="benchmark timing, documented in DESIGN.md",
        )
        target = tmp_path / "baseline.json"
        Baseline([entry]).save(target)
        assert Baseline.load(target).entries[0].justification == (
            "benchmark timing, documented in DESIGN.md"
        )

    def test_unknown_version_is_rejected(self, tmp_path) -> None:
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            Baseline.load(target)


class TestMatching:
    def test_line_drift_does_not_resurrect_findings(self) -> None:
        baseline = Baseline.from_findings([_finding(line=5)])
        moved = _finding(line=123)  # code above it changed
        new, grandfathered = baseline.filter([moved])
        assert new == []
        assert grandfathered == [moved]

    def test_count_budget_caps_absorption(self) -> None:
        baseline = Baseline.from_findings([_finding(line=1)])
        new, grandfathered = baseline.filter(
            [_finding(line=1), _finding(line=2)]
        )
        assert len(grandfathered) == 1
        assert len(new) == 1

    def test_duplicate_findings_merge_into_one_counted_entry(self) -> None:
        baseline = Baseline.from_findings([_finding(line=1), _finding(line=2)])
        assert len(baseline.entries) == 1
        assert baseline.entries[0].count == 2

    def test_different_rule_or_path_never_matches(self) -> None:
        baseline = Baseline.from_findings([_finding()])
        strangers = [
            _finding(rule="no-bare-except"),
            _finding(path="src/y.py"),
            _finding(message="different words"),
        ]
        new, grandfathered = baseline.filter(strangers)
        assert grandfathered == []
        assert len(new) == 3
