"""Shared helpers for the bingolint test suite."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.engine import LintEngine
from repro.lint.findings import Finding

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def _run_from_repo_root(monkeypatch) -> None:
    """Resolve the BingoConfig fallback and display paths consistently."""
    monkeypatch.chdir(REPO_ROOT)


@pytest.fixture
def lint_source(tmp_path):
    """Lint a source string through the full engine; returns findings."""

    def _lint(
        source: str, rules=None, filename: str = "sample.py"
    ) -> list[Finding]:
        target = tmp_path / filename
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
        return LintEngine(rules=rules).run([target])

    return _lint


def normalize(findings: list[Finding]) -> list[Finding]:
    """Replace machine-specific paths with the file's basename."""
    from dataclasses import replace

    return [
        replace(finding, path=Path(finding.path).name)
        for finding in findings
    ]
