"""Fixture: process-global / unseeded randomness."""
import random

import numpy as np


def draw(items):
    rng = np.random.default_rng()
    np.random.shuffle(items)
    return random.choice(items), rng


def source():
    return random.Random()
