"""Fixture: seeded generators threaded from config."""
import numpy as np


def draw(items, seed: int):
    rng = np.random.default_rng(seed)
    return rng.choice(items)


def fork(seed: int):
    return np.random.default_rng(seed * 7919 + 1)
