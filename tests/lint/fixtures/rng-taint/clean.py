"""Fixture: seeded-RNG values may drive decisions deterministically."""
import random


class RecrawlScheduler:
    def __init__(self) -> None:
        self.order: list[str] = []

    def schedule(self, budget: float) -> None:
        self.order.append(str(budget))


def plan(scheduler: RecrawlScheduler, seed: int) -> None:
    # a Random seeded from config is deterministic; its draws may
    # legitimately shape the schedule
    rng = random.Random(seed)
    scheduler.schedule(rng.random() * 2.0)
