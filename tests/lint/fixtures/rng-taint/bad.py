"""Fixture: unseeded-RNG values flowing into decision sites."""
import random


class RecrawlScheduler:
    def __init__(self) -> None:
        self.order: list[str] = []

    def schedule(self, budget: float) -> None:
        self.order.append(str(budget))


class HierarchicalClassifier:
    def __init__(self) -> None:
        self.trained = False

    def train(self, samples: list[float]) -> None:
        self.trained = bool(samples)


def fuzz() -> float:
    # process-global RNG, laundered through a helper
    return random.random()


def plan(scheduler: RecrawlScheduler) -> None:
    budget = fuzz() * 2.0
    scheduler.schedule(budget)


def retrain(classifier: HierarchicalClassifier) -> None:
    noise = [random.uniform(0.0, 1.0)]
    classifier.train(noise)
