"""Fixture: reads resolving to declared BingoConfig fields."""


def run(config: "BingoConfig") -> int:
    return config.crawler_threads


def batch(ctx) -> float:
    return ctx.config.pipeline_batch_size * ctx.config.classify_cost


def policy(config: "BingoConfig"):
    return config.retry_policy()
