"""Fixture: reads of undeclared BingoConfig fields."""


def run(config: "BingoConfig") -> int:
    return config.crawler_treads


def batch(ctx) -> int:
    return ctx.config.pipeline_batchsize
