"""Fixture: unique source names, snake_case keys, all exported."""


class Telemetry:
    def __init__(self) -> None:
        self.depth = 0.0

    def stats(self) -> dict[str, float]:
        out: dict[str, float] = {}
        out["queue_depth"] = self.depth
        return out


class SearchStats:
    def stats(self) -> dict[str, float]:
        return {"queries_total": 0.0}


class Registry:
    def __init__(self) -> None:
        self.sources: dict[str, object] = {}

    def register_source(self, name: str, source: object) -> None:
        self.sources[name] = source


def wire(registry: Registry, a: Telemetry, b: SearchStats) -> None:
    registry.register_source("frontier", a)
    registry.register_source("search", b)
