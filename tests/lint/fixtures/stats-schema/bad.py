"""Fixture: repo-wide metric-schema drift."""


class Telemetry:
    def __init__(self) -> None:
        self.depth = 0.0

    def stats(self) -> dict[str, float]:
        out: dict[str, float] = {}
        out["queueDepth"] = self.depth
        return out


class Orphan:
    def stats(self) -> dict[str, float]:
        return {"drops_total": 1.0}


class Registry:
    def __init__(self) -> None:
        self.sources: dict[str, object] = {}

    def register_source(self, name: str, source: object) -> None:
        self.sources[name] = source


def wire(registry: Registry, a: Telemetry, b: Telemetry) -> None:
    registry.register_source("frontier", a)
    registry.register_source("frontier", b)
