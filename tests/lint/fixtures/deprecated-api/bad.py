"""Fixture: removed PR 9 shims being defined and used again."""


class LocalSearchEngine:
    def __init__(self) -> None:
        self.generation = 0

    @property
    def cache_token(self) -> tuple[int, int]:
        return (0, self.generation)

    def refresh(self) -> None:
        self.generation += 1


def peek(engine: LocalSearchEngine) -> tuple[int, int]:
    return engine.cache_token


def bump(engine: LocalSearchEngine) -> None:
    engine.refresh()


def _deprecated_alias(name: str) -> str:
    return name
