"""Fixture: the typed-Epoch API, with no shim in sight."""


class LocalSearchEngine:
    def __init__(self) -> None:
        self.generation = 0

    def rebuild(self, reason: str = "rebuild") -> None:
        self.generation += 1


def bump(engine: LocalSearchEngine) -> None:
    engine.rebuild(reason="promotion")


def refresh_stats(statistics: dict[str, float]) -> dict[str, float]:
    # "refresh" on a non-engine receiver is a perfectly fine name
    return dict(statistics)
