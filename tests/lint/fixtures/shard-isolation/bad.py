"""Fixture: worker-scope code touching cross-shard state directly."""


class CrawlFrontier:
    def __init__(self) -> None:
        self.pending: list[str] = []

    def push(self, url: str) -> None:
        self.pending.append(url)


class ShardedFrontier:
    def __init__(self) -> None:
        self.cross_links = 0
        self.shards: list[CrawlFrontier] = [CrawlFrontier()]

    def push(self, url: str) -> None:
        self.shards[0].push(url)

    def note_link(self) -> None:
        self.cross_links += 1

    def _admit(self, url: str) -> None:
        self.push(url)


class WorkerSlice:
    def __init__(self, index: int, shared: ShardedFrontier) -> None:
        self.index = index
        self.shared = shared

    def drain(self) -> None:
        # worker mutates shared state instead of calling the API
        self.shared.cross_links += 1
        # and reaches into the private half of the routing API
        self.shared._admit("u")


def run_worker(worker: WorkerSlice, frontier: ShardedFrontier) -> None:
    frontier.shards.pop()
