"""Fixture: workers stay on their slice and use the public APIs."""


class CrawlFrontier:
    def __init__(self) -> None:
        self.pending: list[str] = []

    def push(self, url: str) -> None:
        self.pending.append(url)


class ShardedFrontier:
    def __init__(self) -> None:
        self.cross_links = 0
        self.shards: list[CrawlFrontier] = [CrawlFrontier()]

    def push(self, url: str) -> None:
        # the routing API is the sanctioned cross-shard entry point
        self.shards[0].push(url)

    def note_link(self) -> None:
        self.cross_links += 1


class WorkerSlice:
    def __init__(self, shard: CrawlFrontier, shared: ShardedFrontier) -> None:
        self.shard = shard
        self.shared = shared

    def drain(self) -> None:
        self.shard.push("local")
        self.shared.push("remote")
        self.shared.note_link()
