"""Fixture: absorbed failures stay visible in a counter."""


def count(hook, stats):
    try:
        hook()
    except ValueError:
        stats["hook_errors_total"] = stats.get("hook_errors_total", 0) + 1
