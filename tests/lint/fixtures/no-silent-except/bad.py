"""Fixture: an exception swallowed without a trace."""


def ignore(hook):
    try:
        hook()
    except ValueError:
        pass
