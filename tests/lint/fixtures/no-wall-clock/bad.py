"""Fixture: wall-clock reads outside repro.web.clock."""
import time
from datetime import datetime
from time import monotonic


def stamp() -> float:
    return time.time()


def when():
    return datetime.now()


def tick() -> float:
    return monotonic()
