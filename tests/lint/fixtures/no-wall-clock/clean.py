"""Fixture: benchmark timing and simulated time are allowed."""
import time


def measure() -> float:
    return time.perf_counter()


def at(clock) -> float:
    return clock.now
