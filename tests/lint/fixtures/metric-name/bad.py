"""Fixture: metric families violating the naming conventions."""


def wire(registry):
    registry.counter("crawl_docs")
    registry.counter("Crawl-Docs_total")
    registry.histogram("fetch_seconds_total")
    registry.gauge("depth_total")
