"""Fixture: conforming metric names."""


def wire(registry):
    registry.counter("crawl_docs_total").inc()
    registry.histogram("fetch_seconds").observe(0.1)
    registry.gauge("queue_depth").set(3)
