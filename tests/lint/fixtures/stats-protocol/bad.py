"""Fixture: stats() breaking the Instrumented protocol."""


class Loader:
    def stats(self):
        return ["flushes", 3]


class Cache:
    def stats(self):
        return {"hitRate": 0.5, "misses_total": 2.0}
