"""Fixture: conforming stats() methods."""


class Cache:
    def stats(self) -> dict[str, float]:
        return {"hits_total": 1.0, "miss_ratio": 0.25}


class Loader:
    def stats(self) -> dict[str, float]:
        return dict(rows_flushed_total=4.0)
