"""Fixture: mutable default argument values."""


def merge(extra=[], table={}, tags=set()):
    return extra, table, tags


def consume(queue=dict()):
    return queue
