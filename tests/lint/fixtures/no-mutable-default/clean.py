"""Fixture: None defaults with construction inside the body."""


def merge(extra=None, table=None):
    return list(extra or ()), dict(table or {})


def scale(factor=1.0, label=""):
    return factor, label
