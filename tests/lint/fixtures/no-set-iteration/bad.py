"""Fixture: order-unstable set iteration."""


def emit(items):
    out = []
    for item in set(items):
        out.append(item)
    return out


def caps(tags):
    seen = {tag.lower() for tag in tags}
    return [tag for tag in seen]


def snapshot(ids):
    pending: set[int] = set(ids)
    for item in list(pending):
        pending.discard(item)
