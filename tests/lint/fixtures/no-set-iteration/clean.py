"""Fixture: sorted() restores a total order before iterating."""


def emit(items):
    return [item for item in sorted(set(items))]


def snapshot(ids):
    pending: set[int] = set(ids)
    return sorted(pending)


def membership(ids, probe):
    lookup = set(ids)
    return probe in lookup
