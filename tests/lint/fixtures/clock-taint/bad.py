"""Fixture: wall-clock values laundered through helpers into sinks."""
import time


class Entry:
    def __init__(self, url: str, priority: float) -> None:
        self.url = url
        self.priority = priority


class CrawlFrontier:
    def __init__(self) -> None:
        self.entries: list[Entry] = []

    def push(self, entry: Entry) -> None:
        self.entries.append(entry)

    def requeue(self, entry: Entry, not_before: float) -> None:
        self.entries.append(entry)


def stamp() -> float:
    # the source: two call hops away from the frontier
    return time.time()


def jitter(base: float) -> float:
    return base + 0.5


def admit(frontier: CrawlFrontier, url: str) -> None:
    now = stamp()
    entry = Entry(url, jitter(now))
    frontier.push(entry)


def backoff(frontier: CrawlFrontier, entry: Entry) -> None:
    delay = time.monotonic() + 30.0
    frontier.requeue(entry, delay)
