"""Fixture: deterministic priorities; perf_counter feeds only stats."""
import time


class Entry:
    def __init__(self, url: str, priority: float) -> None:
        self.url = url
        self.priority = priority


class CrawlFrontier:
    def __init__(self) -> None:
        self.entries: list[Entry] = []

    def push(self, entry: Entry) -> None:
        self.entries.append(entry)


class Telemetry:
    def __init__(self) -> None:
        self.admit_seconds = 0.0

    def stats(self) -> dict[str, float]:
        return {"admit_seconds": self.admit_seconds}


def snapshot(telemetry: Telemetry) -> dict[str, float]:
    return telemetry.stats()


def admit(
    frontier: CrawlFrontier,
    telemetry: Telemetry,
    url: str,
    depth: int,
) -> None:
    # the priority is derived from crawl state, never from the clock;
    # perf_counter only measures the admission and lands in stats
    started = time.perf_counter()
    frontier.push(Entry(url, float(depth)))
    telemetry.admit_seconds += time.perf_counter() - started
