"""Fixture: conforming stages (and the exempt Protocol itself)."""
from typing import Protocol


class AbstractStage(Protocol):
    name: str

    def run(self, batch, ctx):
        ...


class KeepStage:
    name = "keep"

    def run(self, batch, ctx):
        return batch
