"""Fixture: stage classes breaking the Stage protocol."""


class RenameStage:
    name = "Rename-Stage"

    def run(self, batch, ctx):
        return batch


class DropStage:
    def execute(self, batch):
        return batch


class SwappedStage:
    name = "swapped"

    def run(self, ctx, batch):
        return batch
