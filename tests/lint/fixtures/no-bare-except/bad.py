"""Fixture: a bare except clause."""


def guard(action):
    try:
        return action()
    except:
        return None
