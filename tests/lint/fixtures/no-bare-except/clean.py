"""Fixture: named exception types."""


def guard(action):
    try:
        return action()
    except ValueError:
        return None
