"""Fixture: all epoch-guarded mutations go through the funnels."""


class QueryCache:
    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> object | None:
        self.misses += 1
        return None

    def put(self, key: str, value: object) -> None:
        self.hits += 1

    def invalidate(self) -> None:
        self.hits = 0
        self.misses = 0


class LocalSearchEngine:
    def __init__(self) -> None:
        self.documents: list[str] = []

    def rebuild(self, documents: list[str]) -> None:
        self.documents = list(documents)

    def apply_delta(self, added: list[str]) -> None:
        self.documents = self.documents + list(added)


def refresh_corpus(
    engine: LocalSearchEngine, cache: QueryCache, documents: list[str]
) -> None:
    # callers drive the lifecycle through the API, never directly
    engine.rebuild(documents)
    cache.invalidate()
