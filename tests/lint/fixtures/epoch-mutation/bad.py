"""Fixture: epoch-guarded state mutated outside its lifecycle funnel."""


class QueryCache:
    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> object | None:
        self.misses += 1
        return None

    def invalidate(self) -> None:
        self.hits = 0
        self.misses = 0


class LocalSearchEngine:
    def __init__(self) -> None:
        self.documents: list[str] = []

    def rebuild(self, documents: list[str]) -> None:
        self.documents = list(documents)

    def sneak(self, document: str) -> None:
        # a method of the class, but not a lifecycle funnel
        self.documents.append(document)


def poke(cache: QueryCache) -> None:
    cache.hits = 5
    cache.misses += 1


def graft(engine: LocalSearchEngine, document: str) -> None:
    engine.documents.append(document)
