"""Engine behaviour: suppressions, exemptions, discovery, determinism."""

from __future__ import annotations

import random

from repro.lint.engine import LintEngine, module_name_for
from repro.lint.reporters import render_json, render_text

WALL_CLOCK_SOURCE = (
    "import time\n"
    "\n"
    "\n"
    "def stamp():\n"
    "    return time.time()\n"
)


class TestSuppressions:
    def test_disable_comment_silences_one_rule(self, lint_source) -> None:
        silenced = WALL_CLOCK_SOURCE.replace(
            "time.time()",
            "time.time()  # bingolint: disable=no-wall-clock",
        )
        assert lint_source(WALL_CLOCK_SOURCE)
        assert lint_source(silenced) == []

    def test_disable_is_per_rule(self, lint_source) -> None:
        silenced = WALL_CLOCK_SOURCE.replace(
            "time.time()",
            "time.time()  # bingolint: disable=no-bare-except",
        )
        findings = lint_source(silenced)
        assert [finding.rule for finding in findings] == ["no-wall-clock"]

    def test_disable_all_wildcard(self, lint_source) -> None:
        silenced = WALL_CLOCK_SOURCE.replace(
            "time.time()", "time.time()  # bingolint: disable=all"
        )
        assert lint_source(silenced) == []

    def test_disable_only_applies_to_its_line(self, lint_source) -> None:
        source = (
            "import time\n"
            "\n"
            "\n"
            "def stamp():\n"
            "    a = time.time()  # bingolint: disable=no-wall-clock\n"
            "    b = time.time()\n"
            "    return a, b\n"
        )
        findings = lint_source(source)
        assert [finding.line for finding in findings] == [6]

    def test_comma_separated_rules(self, lint_source) -> None:
        source = (
            "import time\n"
            "\n"
            "\n"
            "def f(xs=[]):  # bingolint: disable=no-mutable-default\n"
            "    return time.time()  "
            "# bingolint: disable=no-wall-clock,no-bare-except\n"
        )
        assert lint_source(source) == []


class TestModuleExemptions:
    def test_simulated_clock_module_may_read_time(self, tmp_path) -> None:
        package = tmp_path / "repro" / "web"
        package.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (package / "__init__.py").write_text("")
        (package / "clock.py").write_text(WALL_CLOCK_SOURCE)
        (package / "other.py").write_text(WALL_CLOCK_SOURCE)
        assert module_name_for(package / "clock.py") == "repro.web.clock"
        findings = LintEngine().run([tmp_path])
        assert [f.path.rsplit("/", 1)[-1] for f in findings] == ["other.py"]


class TestDiscovery:
    def test_fixture_directories_are_skipped(self, tmp_path) -> None:
        nested = tmp_path / "fixtures"
        nested.mkdir()
        (nested / "bad.py").write_text(WALL_CLOCK_SOURCE)
        (tmp_path / "real.py").write_text(WALL_CLOCK_SOURCE)
        findings = LintEngine().run([tmp_path])
        assert len(findings) == 1
        assert findings[0].path.endswith("real.py")

    def test_explicit_file_in_fixtures_is_still_linted(
        self, tmp_path
    ) -> None:
        nested = tmp_path / "fixtures"
        nested.mkdir()
        (nested / "bad.py").write_text(WALL_CLOCK_SOURCE)
        assert LintEngine().run([nested / "bad.py"])

    def test_duplicate_paths_are_linted_once(self, tmp_path) -> None:
        (tmp_path / "one.py").write_text(WALL_CLOCK_SOURCE)
        findings = LintEngine().run([tmp_path, tmp_path / "one.py"])
        assert len(findings) == 1


class TestParseErrors:
    def test_syntax_error_becomes_a_finding(self, lint_source) -> None:
        findings = lint_source("def broken(:\n")
        assert [finding.rule for finding in findings] == ["parse-error"]


class TestImportResolution:
    def test_aliased_numpy_import_resolves(self, lint_source) -> None:
        source = (
            "import numpy as anything\n"
            "\n"
            "rng = anything.random.default_rng()\n"
        )
        findings = lint_source(source)
        assert [finding.rule for finding in findings] == [
            "no-unseeded-random"
        ]

    def test_unimported_names_are_not_guessed(self, lint_source) -> None:
        # a local object that happens to be called `random` is not the
        # stdlib module; without an import the rule stays quiet
        source = "def f(random):\n    return random.choice([1])\n"
        assert lint_source(source) == []


class TestDeterministicOutput:
    def test_reports_are_stable_across_input_order(self, tmp_path) -> None:
        for name in ("b.py", "a.py", "c.py"):
            (tmp_path / name).write_text(WALL_CLOCK_SOURCE)
        first = LintEngine().run([tmp_path])
        shuffled_paths = [
            tmp_path / "c.py", tmp_path / "a.py", tmp_path / "b.py"
        ]
        second = LintEngine().run(shuffled_paths)
        assert first == second
        assert render_json(first) == render_json(second)
        assert render_text(first) == render_text(second)

    def test_json_report_has_no_timestamps(self, lint_source) -> None:
        import json

        report = json.loads(render_json(lint_source(WALL_CLOCK_SOURCE)))
        keys = set(report) | set(report["summary"])
        for finding in report["findings"]:
            keys |= set(finding)
        assert keys == {
            "version", "findings", "summary", "total", "files",
            "grandfathered", "by_rule", "rule", "path", "line", "col",
            "message",
        }

    def test_sorted_even_if_rule_yields_out_of_order(self) -> None:
        shuffled = LintEngine().run(["tests/lint/fixtures/no-wall-clock"])
        assert shuffled == sorted(shuffled)

    def test_findings_sort_by_location(self) -> None:
        from repro.lint.findings import Finding

        findings = [
            Finding("b.py", 1, 0, "r", "m"),
            Finding("a.py", 9, 0, "r", "m"),
            Finding("a.py", 2, 5, "r", "m"),
            Finding("a.py", 2, 1, "r", "m"),
        ]
        random.Random(3).shuffle(findings)
        ordered = sorted(findings)
        assert [(f.path, f.line, f.col) for f in ordered] == [
            ("a.py", 2, 1), ("a.py", 2, 5), ("a.py", 9, 0), ("b.py", 1, 0)
        ]
