"""Unit tests for the project indexer / call-graph builder."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.lint.engine import LintEngine, ModuleUnit
from repro.lint.graph import ProjectIndex, render_graph_json


def build_index(tmp_path: Path, files: dict[str, str]) -> ProjectIndex:
    engine = LintEngine()
    paths: list[Path] = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        paths.append(path)
    units = [engine.load(path) for path in sorted(paths)]
    return ProjectIndex.build(
        [unit for unit in units if isinstance(unit, ModuleUnit)]
    )


def edges(index: ProjectIndex) -> set[tuple[str, str]]:
    return {
        (function.qualname, site.callee)
        for function in index.functions.values()
        for site in function.calls
        if site.callee is not None
    }


class TestImportResolution:
    def test_cross_module_typed_call_resolves(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/alpha.py": """\
                    class Widget:
                        def ping(self) -> None:
                            pass
                    """,
                "pkg/beta.py": """\
                    from pkg.alpha import Widget


                    def use(widget: Widget) -> None:
                        widget.ping()
                    """,
            },
        )
        assert "pkg.alpha.Widget" in index.classes
        assert ("pkg.beta.use", "pkg.alpha.Widget.ping") in edges(index)

    def test_aliased_import_resolves(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/alpha.py": """\
                    class Widget:
                        def ping(self) -> None:
                            pass
                    """,
                "pkg/beta.py": """\
                    from pkg.alpha import Widget as W


                    def make() -> None:
                        widget = W()
                        widget.ping()
                    """,
            },
        )
        assert ("pkg.beta.make", "pkg.alpha.Widget.ping") in edges(index)


class TestMethodDispatch:
    def test_self_dispatch_follows_mro(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "m.py": """\
                    class Base:
                        def helper(self) -> None:
                            pass


                    class Derived(Base):
                        def run(self) -> None:
                            self.helper()
                    """
            },
        )
        assert ("m.Derived.run", "m.Base.helper") in edges(index)

    def test_attr_typed_receiver_resolves(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "m.py": """\
                    class Widget:
                        def ping(self) -> None:
                            pass


                    class Holder:
                        def __init__(self) -> None:
                            self.widget = Widget()

                        def poke(self) -> None:
                            self.widget.ping()
                    """
            },
        )
        assert ("m.Holder.poke", "m.Widget.ping") in edges(index)


class TestCycles:
    def test_mutual_recursion_terminates(self, tmp_path: Path) -> None:
        index = build_index(
            tmp_path,
            {
                "m.py": """\
                    def odd(n: int) -> bool:
                        return not even(n - 1)


                    def even(n: int) -> bool:
                        return n == 0 or odd(n - 1)
                    """
            },
        )
        assert ("m.odd", "m.even") in edges(index)
        assert ("m.even", "m.odd") in edges(index)
        assert index.reachable_from(["m.odd"]) == ["m.even", "m.odd"]

    def test_cyclic_inheritance_does_not_hang(self, tmp_path: Path) -> None:
        # pathological input: the MRO walk must not loop forever
        index = build_index(
            tmp_path,
            {
                "m.py": """\
                    class A(B):  # noqa
                        pass


                    class B(A):
                        def spin(self) -> None:
                            pass
                    """
            },
        )
        names = [symbol.name for symbol in index.mro("m.A")]
        assert names.count("A") == 1 and names.count("B") == 1


class TestGraphDump:
    def test_dump_is_sorted_and_stable(self, tmp_path: Path) -> None:
        files = {
            "pkg/__init__.py": "",
            "pkg/alpha.py": """\
                class Widget:
                    def ping(self) -> None:
                        pass
                """,
            "pkg/beta.py": """\
                from pkg.alpha import Widget


                def use(widget: Widget) -> None:
                    widget.ping()
                """,
        }
        first = render_graph_json(build_index(tmp_path, files))
        second = render_graph_json(build_index(tmp_path, files))
        assert first == second
        payload = json.loads(first)
        assert payload["version"] == 1
        qualnames = [entry["qualname"] for entry in payload["symbols"]]
        assert qualnames == sorted(qualnames)
        pairs = [
            (edge["caller"], edge["callee"]) for edge in payload["edges"]
        ]
        assert ("pkg.beta.use", "pkg.alpha.Widget.ping") in pairs
