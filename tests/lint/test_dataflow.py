"""Unit tests for the interprocedural clock/RNG taint engine."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint.dataflow import analyze_taint
from repro.lint.engine import LintEngine, ModuleUnit
from repro.lint.graph import ProjectIndex

FRONTIER = """\
class CrawlFrontier:
    def __init__(self) -> None:
        self.pending: list[float] = []

    def push(self, priority: float) -> None:
        self.pending.append(priority)
"""


def flows_in(tmp_path: Path, source: str) -> list[tuple[str, str, str]]:
    path = tmp_path / "m.py"
    path.write_text(FRONTIER + textwrap.dedent(source), encoding="utf-8")
    unit = LintEngine().load(path)
    assert isinstance(unit, ModuleUnit)
    index = ProjectIndex.build([unit])
    return [
        (flow.category, flow.source, flow.sink)
        for flow in analyze_taint(index)
    ]


def test_direct_source_to_sink(tmp_path: Path) -> None:
    assert flows_in(
        tmp_path,
        """\
        import time


        def admit(frontier: CrawlFrontier) -> None:
            now = time.time()
            frontier.push(now)
        """,
    ) == [("clock", "time.time", "CrawlFrontier.push")]


def test_taint_through_helper_return(tmp_path: Path) -> None:
    assert flows_in(
        tmp_path,
        """\
        import time


        def stamp() -> float:
            return time.time()


        def admit(frontier: CrawlFrontier) -> None:
            frontier.push(stamp())
        """,
    ) == [("clock", "time.time", "CrawlFrontier.push")]


def test_taint_through_parameter_passthrough(tmp_path: Path) -> None:
    # the sink is two calls away: admit() inherits push()'s sink
    # param, and the caller supplies the tainted argument
    assert flows_in(
        tmp_path,
        """\
        import random


        def admit(frontier: CrawlFrontier, priority: float) -> None:
            frontier.push(priority)


        def plan(frontier: CrawlFrontier) -> None:
            admit(frontier, random.random())
        """,
    ) == [("rng", "random.random", "CrawlFrontier.push")]


def test_arithmetic_preserves_taint(tmp_path: Path) -> None:
    assert flows_in(
        tmp_path,
        """\
        import time


        def admit(frontier: CrawlFrontier) -> None:
            delay = time.monotonic() + 30.0
            frontier.push(delay * 2.0)
        """,
    ) == [("clock", "time.monotonic", "CrawlFrontier.push")]


def test_seeded_rng_is_not_a_source(tmp_path: Path) -> None:
    assert (
        flows_in(
            tmp_path,
            """\
            import random


            def plan(frontier: CrawlFrontier, seed: int) -> None:
                rng = random.Random(seed)
                frontier.push(rng.random())
            """,
        )
        == []
    )


def test_metrics_only_clock_use_is_not_flagged(tmp_path: Path) -> None:
    # a perf_counter() that never reaches a decision site is fine
    assert (
        flows_in(
            tmp_path,
            """\
            import time


            def measure(frontier: CrawlFrontier) -> float:
                start = time.perf_counter()
                frontier.push(1.0)
                return time.perf_counter() - start
            """,
        )
        == []
    )


def test_flows_are_deterministic(tmp_path: Path) -> None:
    source = """\
    import time


    def admit(frontier: CrawlFrontier) -> None:
        frontier.push(time.time())
        frontier.push(time.monotonic())
    """
    first = flows_in(tmp_path, source)
    second = flows_in(tmp_path, source)
    assert first == second
    assert [flow[1] for flow in first] == ["time.time", "time.monotonic"]
