"""CLI contract: exit codes, formats, baseline flags, rule selection."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.cli import main
from repro.lint.registry import rule_ids

from tests.lint.conftest import FIXTURES

BAD = str(FIXTURES / "no-wall-clock" / "bad.py")
CLEAN = str(FIXTURES / "no-wall-clock" / "clean.py")


class TestExitCodes:
    def test_clean_exits_zero(self, capsys) -> None:
        assert main([CLEAN]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys) -> None:
        assert main([BAD]) == 1
        assert "no-wall-clock" in capsys.readouterr().out

    def test_missing_path_is_usage_error(self, capsys) -> None:
        assert main(["does/not/exist"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_rule_is_usage_error(self, capsys) -> None:
        assert main([CLEAN, "--select", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_bad_flag_is_usage_error(self, capsys) -> None:
        assert main(["--format", "yaml", CLEAN]) == 2

    def test_help_exits_zero(self, capsys) -> None:
        assert main(["--help"]) == 0


class TestReportFormats:
    def test_json_format_parses_and_is_sorted(self, capsys) -> None:
        assert main([BAD, "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["total"] == len(report["findings"]) > 0
        locations = [
            (f["path"], f["line"], f["col"]) for f in report["findings"]
        ]
        assert locations == sorted(locations)

    def test_text_format_lines_are_clickable(self, capsys) -> None:
        main([BAD])
        first = capsys.readouterr().out.splitlines()[0]
        path, line, col, _rest = first.split(":", 3)
        assert path.endswith("bad.py")
        assert line.isdigit() and col.isdigit()

    def test_list_rules(self, capsys) -> None:
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rule_ids():
            assert rule_id in out


class TestRuleSelection:
    def test_select_narrows_to_one_rule(self, capsys) -> None:
        bad = str(FIXTURES / "no-mutable-default" / "bad.py")
        assert main([bad, BAD, "--select", "no-wall-clock"]) == 1
        out = capsys.readouterr().out
        assert "no-wall-clock" in out
        assert "no-mutable-default" not in out

    def test_ignore_drops_a_rule(self, capsys) -> None:
        assert main([BAD, "--ignore", "no-wall-clock"]) == 0


class TestBaselineFlags:
    def test_write_baseline_then_clean_run(self, tmp_path, capsys) -> None:
        baseline = tmp_path / "baseline.json"
        assert main([BAD, "--baseline", str(baseline), "--write-baseline"]) == 0
        assert baseline.is_file()
        assert main([BAD, "--baseline", str(baseline)]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_no_baseline_overrides_file(self, tmp_path) -> None:
        baseline = tmp_path / "baseline.json"
        main([BAD, "--baseline", str(baseline), "--write-baseline"])
        assert main([BAD, "--baseline", str(baseline), "--no-baseline"]) == 1

    def test_new_findings_escape_the_baseline(self, tmp_path) -> None:
        baseline = tmp_path / "baseline.json"
        main([CLEAN, "--baseline", str(baseline), "--write-baseline"])
        assert main([BAD, "--baseline", str(baseline)]) == 1

    def test_corrupt_baseline_is_usage_error(self, tmp_path, capsys) -> None:
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"version": 42}')
        assert main([BAD, "--baseline", str(baseline)]) == 2
        assert "bad baseline" in capsys.readouterr().err


class TestGraphOut:
    def test_graph_out_writes_sorted_dump(self, tmp_path) -> None:
        out = tmp_path / "graph.json"
        assert main([CLEAN, "--graph-out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["version"] == 1
        assert payload["modules"] and payload["symbols"]
        qualnames = [entry["qualname"] for entry in payload["symbols"]]
        assert qualnames == sorted(qualnames)

    def test_graph_out_dash_prints_to_stdout(self, capsys) -> None:
        assert main([CLEAN, "--graph-out", "-"]) == 0
        out = capsys.readouterr().out
        graph_text = out[: out.rindex("}") + 1]
        assert json.loads(graph_text)["version"] == 1

    def test_graph_out_with_findings_still_exits_one(
        self, tmp_path
    ) -> None:
        out = tmp_path / "graph.json"
        assert main([BAD, "--graph-out", str(out)]) == 1
        assert out.is_file()


class TestDeterminism:
    """Byte-identical reports and graph dumps across repeated runs."""

    def test_json_report_is_byte_identical(self, capsys) -> None:
        paths = [str(FIXTURES / "clock-taint" / "bad.py")]
        main(paths + ["--format", "json", "--no-baseline"])
        first = capsys.readouterr().out
        main(paths + ["--format", "json", "--no-baseline"])
        second = capsys.readouterr().out
        assert first == second

    def test_graph_dump_is_byte_identical(self, tmp_path) -> None:
        target = str(Path("src/repro/lint"))
        dumps: list[str] = []
        for name in ("one.json", "two.json"):
            out = tmp_path / name
            main([target, "--no-baseline", "--graph-out", str(out)])
            dumps.append(out.read_text())
        assert dumps[0] == dumps[1]


class TestRepositoryIsClean:
    """The acceptance criterion, as a test: the tree lints clean."""

    def test_src_lints_clean(self) -> None:
        assert main(["src", "--no-baseline"]) == 0

    def test_tests_and_examples_lint_clean(self) -> None:
        assert main(["tests", "examples", "benchmarks", "--no-baseline"]) == 0

    def test_no_suppressions_in_contract_packages(self) -> None:
        from repro.lint.engine import _collect_suppressions

        # the determinism contract's own packages may not opt out of it
        for package in ("lint", "obs", "pipeline", "robust"):
            for path in Path("src/repro", package).rglob("*.py"):
                assert _collect_suppressions(path.read_text()) == {}, path

    def test_committed_baseline_is_empty_or_justified(self) -> None:
        baseline = Path(".bingolint-baseline.json")
        assert baseline.is_file(), "commit an (empty) baseline file"
        data = json.loads(baseline.read_text())
        for entry in data["entries"]:
            justification = entry.get("justification", "")
            assert justification and "TODO" not in justification, entry
