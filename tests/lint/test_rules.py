"""Golden-fixture tests: one bad/clean pair per shipped rule.

For every rule, ``fixtures/<rule>/bad.py`` must reproduce exactly the
findings recorded in ``expected.json`` (true positives at stable
locations), and ``fixtures/<rule>/clean.py`` must produce zero findings
under the *full* rule set (no false positives, including from sibling
rules).
"""

from __future__ import annotations

import json

import pytest

from repro.lint.engine import LintEngine
from repro.lint.registry import all_rules, get_rule, rule_ids
from repro.lint.reporters import render_json

from tests.lint.conftest import FIXTURES, normalize

RULE_IDS = sorted(path.name for path in FIXTURES.iterdir() if path.is_dir())


def test_every_shipped_rule_has_a_fixture() -> None:
    assert RULE_IDS == rule_ids()


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_fixture_matches_expected_findings(rule_id: str) -> None:
    engine = LintEngine(rules=[get_rule(rule_id)])
    findings = normalize(engine.run([FIXTURES / rule_id / "bad.py"]))
    assert findings, f"{rule_id}: bad.py produced no findings"
    assert all(finding.rule == rule_id for finding in findings)
    expected = json.loads(
        (FIXTURES / rule_id / "expected.json").read_text()
    )
    assert json.loads(render_json(findings)) == expected


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_clean_fixture_has_zero_findings(rule_id: str) -> None:
    engine = LintEngine()  # full rule set: no cross-rule false positives
    assert engine.run([FIXTURES / rule_id / "clean.py"]) == []


def test_rules_have_descriptions_and_rationales() -> None:
    for rule in all_rules():
        assert rule.id
        assert rule.description
        assert rule.rationale, f"{rule.id} is missing its rationale"
