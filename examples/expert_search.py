"""Expert Web search (paper section 5.3, Figures 4 and 5).

Hunts for "public domain open source implementations of the ARIES
recovery algorithm" on a synthetic Web where a plain keyword engine
drowns in open-source portal noise.  The workflow mirrors the paper:

1. keyword query against an external (unfocused) engine;
2. simulated human inspection picks up to 7 reasonable seeds (Figure 4);
3. a short focused crawl from those seeds;
4. local keyword postprocessing whose top 10 surfaces the needle
   project pages (Figure 5);
5. one round of relevance feedback to sharpen the result further.

Run with::

    python examples/expert_search.py
"""

from __future__ import annotations

from repro.experiments.expert import run_expert_experiment


def main() -> None:
    result = run_expert_experiment(crawl_fetch_budget=700)

    print(result.figure4().render())
    print()
    row = result.crawl_table1
    print(
        f"focused crawl: visited={row['visited_urls']} "
        f"stored={row['stored_pages']} "
        f"accepted={row['positively_classified']} "
        f"depth={row['max_crawling_depth']}"
    )
    print()
    print(result.figure5().render())
    print()
    print(
        f"needle pages crawled: {result.needles_crawled}; "
        f"in the focused top 10: {result.needles_in_top10}; "
        f"in the unfocused baseline top 10: "
        f"{result.unfocused_needles_in_top10}"
    )
    if result.needles_in_top10 > result.unfocused_needles_in_top10:
        print(
            "=> the focused crawl surfaced implementations a plain "
            "keyword search could not (the paper's headline result)."
        )


if __name__ == "__main__":
    main()
