"""Fault-tolerance smoke: burst failures, quarantine recovery, resume.

Two demonstrations of the robustness layer (``repro.robust``), each with
a hard pass/fail verdict so CI can run this script as a gate:

1. **Burst failures** -- a fault-injection window takes one host down
   for 40 simulated seconds.  The crawl must quarantine the host, defer
   its URLs (no retry before its backoff), re-probe it after probation,
   and store its pages once the burst passes.
2. **Checkpoint / kill / resume** -- a crawl checkpointing every 25
   visits is killed after 60; a fresh crawler restored from the last
   checkpoint finishes the phase and must land on exactly the Table-1
   counters of an uninterrupted run.

Run with::

    python examples/fault_tolerance.py [--metrics-out PATH]

``--metrics-out`` writes both demos' final metrics snapshots
(:mod:`repro.obs`) as one JSON document, keyed ``burst`` / ``resume``
-- CI uses it to assert the breaker transition counters exported.
Exits non-zero if any check fails.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile

from repro.core import BingoConfig, FocusedCrawler, HierarchicalClassifier
from repro.core.crawler import SOFT, PhaseSettings
from repro.core.ontology import TopicTree
from repro.robust import Checkpointer, FaultWindow, restore_crawler
from repro.text.features import AnalyzedDocument, TermSpace
from repro.text.tokenizer import tokenize_html
from repro.web import PageRole, SyntheticWeb, WebGraphConfig

WEB_CONFIG = WebGraphConfig(
    seed=7,
    target_researchers=40,
    other_researchers=12,
    universities=10,
    hubs_per_topic=3,
    background_hosts_per_category=3,
    pages_per_background_host=3,
    directory_pages_per_category=4,
)

failures: list[str] = []


def check(condition: bool, label: str) -> None:
    print(f"  [{'ok' if condition else 'FAIL'}] {label}")
    if not condition:
        failures.append(label)


def train_classifier(web, config: BingoConfig) -> HierarchicalClassifier:
    """A single-topic classifier trained straight from web contents."""
    tree = TopicTree.from_leaves(["databases"])
    classifier = HierarchicalClassifier(tree, config)
    space = TermSpace()

    def counts_for(page):
        doc = tokenize_html(web.renderer.render(page))
        return {"term": space.extract(AnalyzedDocument(tokens=doc.tokens))}

    positives = [
        counts_for(p)
        for p in web.pages_by_topic("databases")
        if p.role == PageRole.PAPER
    ][:20]
    negatives = [counts_for(p) for p in web.negative_example_pages(20)]
    training = {"ROOT/databases": positives, "ROOT/OTHERS": negatives}
    for docs in training.values():
        for counts in docs:
            classifier.ingest(counts)
    classifier.train(training)
    return classifier


def build_crawler(config: BingoConfig) -> FocusedCrawler:
    web = SyntheticWeb.generate(WEB_CONFIG)
    crawler = FocusedCrawler(web, train_classifier(web, config), config)
    crawler.seed(web.seed_homepages(3), topic="ROOT/databases", priority=10.0)
    return crawler


def burst_failure_demo() -> FocusedCrawler:
    print("== crawl under an injected burst-failure window ==")
    web = SyntheticWeb.generate(WEB_CONFIG)
    victim = next(
        h for h in web.hosts.values() if h.name.startswith("u")
    )
    config = BingoConfig(
        max_retries=2,
        retry_base_delay=2.0,
        retry_jitter=0.0,
        host_quarantine=30.0,
        max_host_deferrals=10,
        selected_features=300,
        tf_preselection=1000,
        fault_windows=(
            FaultWindow(0.0, 40.0, kind="timeout", hosts=(victim.name,)),
        ),
    )
    crawler = FocusedCrawler(web, train_classifier(web, config), config)
    urls = [p.url for p in web.pages if p.host == victim.name][:5]
    crawler.seed(urls, topic="ROOT/databases", priority=10.0)
    stats = crawler.crawl(
        PhaseSettings(name="burst", focus=SOFT, fetch_budget=80)
    )

    state = crawler._host_state(victim.name)
    print(
        f"  injected={dict(crawler.faults.injected)} "
        f"retries={stats.retries} deferred={stats.quarantine_deferred} "
        f"trips={state.trips} probes={state.probes}"
    )
    check(crawler.faults.injected["timeout"] > 0, "faults were injected")
    check(state.trips >= 1, "burst host was quarantined")
    check(state.probes >= 1, "quarantined host was re-probed after probation")
    check(not state.bad, "host recovered once the window passed")
    check(
        any(d.host == victim.name for d in crawler.documents),
        "pages of the burst host were stored after recovery",
    )
    check(
        all(
            record["not_before"] > record["scheduled_at"]
            for record in crawler.retry_log
        ),
        "every retry carried a backoff deadline",
    )
    transitions = crawler.obs.registry.value(
        "robust_breaker_transitions_total", change="closed->open"
    )
    check(transitions >= 1, "breaker transitions were counted in the registry")
    return crawler


def checkpoint_resume_demo() -> FocusedCrawler:
    print("== checkpoint / kill / resume ==")
    config = BingoConfig(
        max_retries=2, selected_features=300, tf_preselection=1000
    )
    phase = PhaseSettings(name="harvest", focus=SOFT, fetch_budget=120)

    baseline = build_crawler(config)
    baseline_stats = baseline.crawl(phase)

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        interrupted = build_crawler(config)
        checkpointer = Checkpointer(checkpoint_dir, every=25)
        interrupted.crawl(
            PhaseSettings(name="harvest", focus=SOFT, fetch_budget=60),
            checkpointer=checkpointer,
        )
        print(f"  killed after 60 visits ({checkpointer.saves} checkpoints)")
        del interrupted

        resumed = build_crawler(config)
        resume_stats = restore_crawler(resumed, checkpoint_dir)
        print(f"  restored at visit {resume_stats.visited_urls}")
        final_stats = resumed.crawl(phase, resume=resume_stats)

    print(f"  baseline: {baseline_stats.table1_row()}")
    print(f"  resumed:  {final_stats.table1_row()}")
    check(
        final_stats.table1_row() == baseline_stats.table1_row(),
        "resumed crawl reached identical Table-1 counters",
    )
    check(
        [d.final_url for d in resumed.documents]
        == [d.final_url for d in baseline.documents],
        "resumed crawl stored identical documents",
    )
    return resumed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write both demos' metrics snapshots to PATH as JSON",
    )
    args = parser.parse_args(argv)

    burst_crawler = burst_failure_demo()
    resumed_crawler = checkpoint_resume_demo()

    if args.metrics_out:
        path = pathlib.Path(args.metrics_out)
        if path.parent != pathlib.Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(
            {
                "burst": burst_crawler.obs.registry.snapshot(),
                "resume": resumed_crawler.obs.registry.snapshot(),
            },
            sort_keys=True,
            indent=2,
        ) + "\n")
        print(f"\nmetrics written: {path}")

    if failures:
        print(f"\n{len(failures)} check(s) FAILED: {failures}")
        return 1
    print("\nall fault-tolerance checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
