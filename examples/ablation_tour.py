"""A tour of the design-choice ablations (paper sections 3.1-3.4).

Each of the four improvements that turned the "fairly mixed success"
first prototype into the published system is switched off in isolation:

* A1 -- sharp/soft focus and tunnelling (3.3);
* A2 -- the archetype mean-confidence threshold vs topic drift (3.2);
* A3 -- systematic vs arbitrary negative examples (3.1);
* A4 -- feature spaces and xi-alpha model selection (3.4/3.5).

Run with::

    python examples/ablation_tour.py
"""

from __future__ import annotations

from repro.experiments.ablations import (
    run_archetype_ablation,
    run_feature_space_ablation,
    run_focus_ablation,
    run_negatives_ablation,
)


def main() -> None:
    print(run_focus_ablation(budget=450).table().render())
    print()
    print(run_archetype_ablation(seeds=(59, 61)).table().render())
    print()
    print(run_negatives_ablation().table().render())
    print()
    print(run_feature_space_ablation().table().render())


if __name__ == "__main__":
    main()
