"""Information portal generation (paper section 5.2, Tables 1-3).

Runs the full portal experiment -- a single-topic "database research"
crawl seeded with two homepages, paused and resumed like the paper's
90-minute/12-hour checkpoints -- then post-processes the result like a
portal administrator would: registry scoring, a keyword query through
the local search engine, and cluster-based subclass suggestions.

Run with::

    python examples/portal_generation.py
"""

from __future__ import annotations

from repro.experiments.portal import run_portal_experiment
from repro.search.clustering import suggest_subclasses
from repro.search.engine import LocalSearchEngine, RankingWeights


def main() -> None:
    result = run_portal_experiment(short_budget=500, long_budget=3000)
    print(result.table1().render())
    print()
    print(result.table2().render())
    print()
    print(result.table3().render())
    print()
    for note in result.notes:
        print(f"note: {note}")

    # Rerun a small crawl to demonstrate postprocessing on live objects.
    from repro.core import BingoEngine
    from repro.experiments.portal import bench_engine_config, bench_web_config
    from repro.web import SyntheticWeb

    web = SyntheticWeb.generate(bench_web_config(seed=17))
    engine = BingoEngine.for_portal(web, config=bench_engine_config(seed=17))
    engine.run(harvesting_fetch_budget=800)
    documents = engine.ranked_results("ROOT/databases")

    print("\n--- local search engine: query 'concurrency recovery' ---")
    search = LocalSearchEngine(engine.crawler.documents)
    hits = search.search(
        "concurrency recovery",
        topic="ROOT/databases",
        weights=RankingWeights(cosine=0.6, confidence=0.2, authority=0.2),
        top_k=5,
    )
    for hit in hits:
        print(
            f"  {hit.score:5.3f} (cos {hit.cosine:4.2f} / conf "
            f"{hit.confidence:4.2f} / auth {hit.authority:4.2f})  {hit.url}"
        )

    print("\n--- subclass suggestions for the 'databases' class ---")
    suggestions = suggest_subclasses(documents[:80], k_range=(2, 3, 4))
    for suggestion in suggestions:
        print(
            f"  proposed subclass '{suggestion.label}' "
            f"({len(suggestion.documents)} documents)"
        )


if __name__ == "__main__":
    main()
