"""Quickstart: run a focused crawl end to end in under a minute.

Generates a small synthetic Web, points BINGO! at the homepages of two
leading "database researchers", runs the learning + harvesting phases,
and prints the crawl summary plus the ten most confident results.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import BingoConfig, BingoEngine
from repro.web import SyntheticWeb, WebGraphConfig


def main() -> None:
    # A small Web: ~1,500 pages across six research topics and five
    # background categories, with hubs, welcome pages, traps and noise.
    web = SyntheticWeb.generate(
        WebGraphConfig(
            seed=7,
            target_researchers=60,
            other_researchers=20,
            universities=15,
            hubs_per_topic=3,
            background_hosts_per_category=4,
            pages_per_background_host=3,
            directory_pages_per_category=4,
        )
    )
    print(f"synthetic web: {web.size} pages on {len(web.hosts)} hosts")

    # BINGO! seeded with the two most-published researchers' homepages
    # (the paper seeds with the homepages of DeWitt and Gray).
    config = BingoConfig(
        learning_fetch_budget=120,
        retrain_interval=60,
        negative_examples=20,
    )
    engine = BingoEngine.for_portal(web, config=config)
    print(f"seeds: {engine.seeds}")

    report = engine.run(harvesting_fetch_budget=500)
    for phase in report.phases:
        row = phase.stats.table1_row()
        print(
            f"{phase.name:>10}: visited={row['visited_urls']} "
            f"stored={row['stored_pages']} "
            f"accepted={row['positively_classified']} "
            f"hosts={row['visited_hosts']} depth={row['max_crawling_depth']} "
            f"(retrainings={phase.retrainings}, "
            f"archetypes +{phase.archetypes_added}/-{phase.archetypes_removed})"
        )

    print("\ntop 10 results by SVM confidence:")
    for doc in engine.ranked_results("ROOT/databases")[:10]:
        print(f"  {doc.confidence:6.3f}  {doc.final_url}")

    registry = web.registry("databases")
    found = registry.found_authors(
        doc.final_url for doc in engine.crawler.documents
    )
    print(
        f"\nregistry recall: {len(found)}/{len(registry)} database "
        "researchers have a page in the crawl result"
    )

    # Every subsystem reported into one metrics registry (repro.obs);
    # the same snapshot is exportable as Prometheus text or JSON via
    # `python -m repro.cli portal crawl --metrics-out metrics.json`.
    snapshot = engine.obs.registry.snapshot()
    print("\nfinal metrics snapshot (per-subsystem stats sources):")
    for source, stats in snapshot["sources"].items():
        line = " ".join(
            f"{key}={value:g}" for key, value in sorted(stats.items())
        )
        print(f"  {source}: {line}")
    metrics = engine.obs.registry
    print(
        "  pipeline: batches="
        f"{metrics.value('pipeline_stage_batches_total', stage='classify'):g}"
        f" accepted={metrics.value('pipeline_docs_accepted_total'):g}"
        f" retries={metrics.value('robust_retries_scheduled_total'):g}"
    )


if __name__ == "__main__":
    main()
