"""Semantic XML export and ranked XML retrieval (paper section 6).

The paper's outlook: generate "semantically tagged XML documents from
the HTML pages that BINGO! crawls" and incorporate "ranked retrieval of
XML data" into the postprocessing.  This example crawls a small Web,
exports the result as tagged XML, and runs XXL-style path+similarity
queries over it.

Run with::

    python examples/semantic_export.py
"""

from __future__ import annotations

import tempfile

from repro.core import BingoConfig, BingoEngine
from repro.semantic import XmlExporter, parse_query
from repro.web import SyntheticWeb, WebGraphConfig


def main() -> None:
    web = SyntheticWeb.generate(
        WebGraphConfig(
            seed=7, target_researchers=60, other_researchers=20,
            universities=15, hubs_per_topic=3,
            background_hosts_per_category=4, pages_per_background_host=3,
            directory_pages_per_category=4,
        )
    )
    engine = BingoEngine.for_portal(
        web,
        config=BingoConfig(learning_fetch_budget=120, negative_examples=20),
    )
    engine.run(harvesting_fetch_budget=400)

    exporter = XmlExporter(engine.crawler.documents)
    collection = exporter.to_element(topics=["ROOT/databases"])
    print(
        f"exported {collection.get('documents')} database documents "
        "as tagged XML"
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = exporter.write(f"{tmp}/crawl.xml", topics=["ROOT/databases"])
        print(f"written to {path} ({path.stat().st_size} bytes)")

    queries = [
        'crawl/document/classification/topic[@path="ROOT/databases"]',
        'crawl//term[@stem="recoveri"]',
        'crawl/document/terms[~"query transaction recovery"]',
    ]
    for text in queries:
        matches = parse_query(text).run(collection, top_k=3)
        print(f"\nquery: {text}")
        for match in matches:
            element = match.element
            url = None
            for document in collection.iter("document"):
                if document.get("id") == match.document_id:
                    url = document.get("url")
                    break
            print(
                f"  score {match.score:6.3f}  <{element.tag}> "
                f"in doc {match.document_id} ({url})"
            )


if __name__ == "__main__":
    main()
